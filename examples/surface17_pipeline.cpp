// Full Fig. 2 pipeline on Surface-17, driven the way Qmap/OpenQL does it:
// the program arrives as cQASM text, the machine description is a JSON
// configuration file, and the output is a cycle-accurate schedule that
// honours the classical-control constraints of Sec. V (shared microwave
// generators, measurement feedlines, CZ parking).
//
// Also demonstrates the ExecutionSnapshot of Sec. VI-B: the dependency
// graph with scheduling colours, the evolving placement, the partial
// schedule, and the shared-AWG control settings.
#include <cstdio>
#include <iostream>

#include "arch/builtin.hpp"
#include "arch/config.hpp"
#include "core/compiler.hpp"
#include "core/snapshot.hpp"
#include "qasm/cqasm.hpp"
#include "schedule/export.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace qmap;

  // --- Left input of Fig. 2: the algorithm, in cQASM ---
  const std::string program = R"(version 1.0
# the paper's Fig. 1 example, expressed in cQASM
qubits 4
h q[0]
h q[2]
cnot q[2], q[3]
t q[1]
cnot q[0], q[1]
h q[3]
cnot q[1], q[2]
t q[0]
cnot q[0], q[2]
cnot q[2], q[3]
)";
  const Circuit circuit = parse_cqasm(program);
  std::cout << "parsed cQASM program: " << circuit.size() << " gates on "
            << circuit.num_qubits() << " qubits\n\n";

  // --- Right input of Fig. 2: the machine description (JSON config) ---
  // Round-trip through JSON to show the config path Qmap uses; a user
  // would call load_device("surface17.json") instead.
  const Json config = device_to_json(devices::surface17());
  const Device device = device_from_json(config);
  std::cout << "device config (excerpt): feedlines="
            << config.at("feedlines").dump() << "\n\n";
  std::cout << device.summary() << "\n";

  // --- Compile with the latency-aware Qmap-style router ---
  CompilerOptions options;
  options.placer = "annealing";
  options.router = "qmap";
  const Compiler compiler(device, options);
  const CompilationResult result = compiler.compile(circuit);
  std::cout << result.report() << "\n";
  std::printf("baseline (no control constraints, dependencies only): %d "
              "cycles = %.0f ns\n",
              result.baseline_cycles,
              result.baseline_cycles * device.durations().cycle_ns);
  std::printf("with mapping + control constraints: %d cycles = %.0f ns "
              "(%.2fx)\n\n",
              result.scheduled_cycles,
              result.scheduled_cycles * device.durations().cycle_ns,
              result.latency_ratio());

  // --- Sec. VI-B: step the execution snapshot ---
  ExecutionSnapshot snapshot(result.routing.circuit, device,
                             result.routing.initial);
  std::cout << "=== Execution snapshot, stepping the first 3 gates ===\n";
  for (int i = 0; i < 3 && snapshot.step(); ++i) {
    std::cout << snapshot.to_string();
  }
  snapshot.run_to_completion();
  std::cout << "\n=== Final snapshot ===\n" << snapshot.to_string();
  std::cout << "\n=== Cycle table of the scheduled circuit (Sec. VI-B) ===\n"
            << result.schedule.to_table();

  // Fig. 2's output artifact: cQASM with explicit parallel bundles.
  std::cout << "\n=== Scheduled output as bundled cQASM (Fig. 2) ===\n"
            << to_cqasm_bundled(result.schedule, /*cycle_comments=*/true);

  const bool ok = Compiler::verify(result);
  std::cout << "\nverification: " << (ok ? "EQUIVALENT" : "MISMATCH") << "\n";
  return ok ? 0 : 1;
}
