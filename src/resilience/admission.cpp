#include "resilience/admission.hpp"

#include <string>

namespace qmap::resilience {

std::string admission_verdict_name(AdmissionVerdict verdict) {
  switch (verdict) {
    case AdmissionVerdict::Admit: return "admit";
    case AdmissionVerdict::DownTier: return "down-tier";
    case AdmissionVerdict::Reject: return "reject";
  }
  return "admit";
}

std::string AdmissionReport::to_string() const {
  std::string out = admission_verdict_name(verdict);
  for (const std::string& reason : reasons) out += "\n  " + reason;
  return out;
}

Json AdmissionReport::to_json() const {
  Json out;
  out["verdict"] = Json(admission_verdict_name(verdict));
  JsonArray reason_list;
  for (const std::string& reason : reasons) reason_list.push_back(Json(reason));
  out["reasons"] = Json(std::move(reason_list));
  out["estimated_strategy_bytes"] = Json(estimated_strategy_bytes);
  out["estimated_portfolio_bytes"] = Json(estimated_portfolio_bytes);
  out["gates"] = Json(metrics.total_gates);
  out["depth"] = Json(metrics.depth);
  return out;
}

AdmissionGuard::AdmissionGuard(const Device& device, ResourceBudget budget)
    : device_qubits_(device.num_qubits()),
      device_name_(device.name()),
      budget_(budget) {}

AdmissionReport AdmissionGuard::assess(const Circuit& circuit,
                                       std::size_t num_strategies,
                                       double deadline_ms) const {
  AdmissionReport report;
  report.metrics = compute_metrics(circuit);
  const std::size_t gates = report.metrics.total_gates;
  const int width = circuit.num_qubits();

  // Coarse peak-working-set model of one strategy run: the pipeline holds
  // ~6 circuit incarnations (original, lowered, routed, expanded, fused,
  // final) at ~80 bytes/gate, a schedule at ~48 bytes/op, and the shared
  // all-pairs distance cache at 8 bytes/entry. An order-of-magnitude guard,
  // not an accountant — budgets should carry 2x headroom anyway.
  report.estimated_strategy_bytes =
      gates * (6 * 80 + 48) +
      static_cast<std::size_t>(device_qubits_) *
          static_cast<std::size_t>(device_qubits_) * 8 +
      (std::size_t(1) << 16);
  report.estimated_portfolio_bytes =
      report.estimated_strategy_bytes * (num_strategies > 0 ? num_strategies
                                                            : 1);

  const auto reject = [&report](std::string reason) {
    report.verdict = AdmissionVerdict::Reject;
    report.reasons.push_back(std::move(reason));
  };
  const auto down_tier = [&report](std::string reason) {
    if (report.verdict == AdmissionVerdict::Admit) {
      report.verdict = AdmissionVerdict::DownTier;
    }
    report.reasons.push_back(std::move(reason));
  };

  // --- Structured validation: requests that can never succeed. ---
  if (width < 1) {
    reject("circuit has no qubits");
  }
  if (width > device_qubits_) {
    reject("circuit uses " + std::to_string(width) + " qubits but device '" +
           device_name_ + "' has " + std::to_string(device_qubits_));
  }
  for (std::size_t i = 0; i < circuit.size(); ++i) {
    const Gate& gate = circuit.gate(i);
    bool bad = false;
    for (const int q : gate.qubits) bad = bad || q < 0 || q >= width;
    if (gate.qubits.size() == 2 && gate.qubits[0] == gate.qubits[1]) {
      bad = true;
    }
    if (bad) {
      reject("gate " + std::to_string(i) + " (" + gate.to_string() +
             ") has malformed operands for a " + std::to_string(width) +
             "-qubit circuit");
      break;  // one structural finding is enough to fail fast
    }
  }

  // --- Hard resource budgets. ---
  if (budget_.max_qubits > 0 && width > budget_.max_qubits) {
    reject("circuit width " + std::to_string(width) +
           " exceeds budget max_qubits " + std::to_string(budget_.max_qubits));
  }
  if (budget_.max_gates > 0 && gates > budget_.max_gates) {
    reject("gate count " + std::to_string(gates) +
           " exceeds budget max_gates " + std::to_string(budget_.max_gates));
  }
  if (budget_.max_depth > 0 && report.metrics.depth > budget_.max_depth) {
    reject("depth " + std::to_string(report.metrics.depth) +
           " exceeds budget max_depth " + std::to_string(budget_.max_depth));
  }
  if (budget_.max_memory_bytes > 0 &&
      report.estimated_strategy_bytes > budget_.max_memory_bytes) {
    reject("estimated working set " +
           std::to_string(report.estimated_strategy_bytes) +
           " bytes exceeds budget max_memory_bytes " +
           std::to_string(budget_.max_memory_bytes) +
           " even for a single strategy");
  }
  if (report.verdict == AdmissionVerdict::Reject) return report;

  // --- Soft budgets: admit, but skip the expensive portfolio rung. ---
  if (budget_.max_memory_bytes > 0 && num_strategies > 1 &&
      report.estimated_portfolio_bytes > budget_.max_memory_bytes) {
    down_tier("portfolio race of " + std::to_string(num_strategies) +
              " strategies estimated at " +
              std::to_string(report.estimated_portfolio_bytes) +
              " bytes exceeds max_memory_bytes " +
              std::to_string(budget_.max_memory_bytes) +
              "; starting at the single-strategy rung");
  }
  if (deadline_ms > 0.0 && budget_.min_race_deadline_ms > 0.0 &&
      deadline_ms < budget_.min_race_deadline_ms) {
    down_tier("deadline " + std::to_string(deadline_ms) +
              " ms is below min_race_deadline_ms " +
              std::to_string(budget_.min_race_deadline_ms) +
              "; starting at the single-strategy rung");
  }
  return report;
}

}  // namespace qmap::resilience
