// Gate-decomposition tests: every lowering pass must be unitarily
// equivalent to its input, and the Euler decompositions must reconstruct
// arbitrary single-qubit unitaries.
#include <cmath>

#include <gtest/gtest.h>

#include "arch/builtin.hpp"
#include "decompose/decomposer.hpp"
#include "decompose/euler.hpp"
#include "sim/equivalence.hpp"
#include "sim/statevector.hpp"
#include "workloads/workloads.hpp"

namespace qmap {
namespace {

constexpr double kPi = 3.14159265358979323846;

Matrix random_unitary_2x2(Rng& rng) {
  // Random U via random ZYZ angles + phase.
  const double theta = rng.uniform(0.0, kPi);
  const double phi = rng.uniform(-kPi, kPi);
  const double lambda = rng.uniform(-kPi, kPi);
  const double phase = rng.uniform(-kPi, kPi);
  return matrix_from_zyz(EulerAngles{theta, phi, lambda, phase});
}

TEST(Euler, ZyzReconstructsRandomUnitaries) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const Matrix u = random_unitary_2x2(rng);
    const EulerAngles angles = zyz_decompose(u);
    EXPECT_TRUE(matrix_from_zyz(angles).approx_equal(u, 1e-8))
        << "trial " << trial;
  }
}

TEST(Euler, YxyReconstructsRandomUnitaries) {
  Rng rng(43);
  for (int trial = 0; trial < 50; ++trial) {
    const Matrix u = random_unitary_2x2(rng);
    const EulerAngles angles = yxy_decompose(u);
    EXPECT_TRUE(matrix_from_yxy(angles).approx_equal(u, 1e-8))
        << "trial " << trial;
  }
}

TEST(Euler, HandlesDiagonalUnitaries) {
  const Matrix z = make_gate(GateKind::Z, {0}).matrix();
  EXPECT_TRUE(matrix_from_zyz(zyz_decompose(z)).approx_equal(z, 1e-9));
  const Matrix t = make_gate(GateKind::T, {0}).matrix();
  EXPECT_TRUE(matrix_from_zyz(zyz_decompose(t)).approx_equal(t, 1e-9));
}

TEST(Euler, HandlesAntiDiagonalUnitaries) {
  const Matrix x = make_gate(GateKind::X, {0}).matrix();
  EXPECT_TRUE(matrix_from_zyz(zyz_decompose(x)).approx_equal(x, 1e-9));
  const Matrix y = make_gate(GateKind::Y, {0}).matrix();
  EXPECT_TRUE(matrix_from_zyz(zyz_decompose(y)).approx_equal(y, 1e-9));
}

TEST(Euler, RejectsNonUnitary) {
  Matrix m(2, 2);
  m.at(0, 0) = 2.0;
  EXPECT_THROW((void)zyz_decompose(m), Error);
}

TEST(Euler, HadamardInYxyBasisUsesTwoRotations) {
  // H decomposes over {Rx, Ry} with one zero angle (cheap on Surface-17).
  const EulerAngles angles =
      yxy_decompose(make_gate(GateKind::H, {0}).matrix());
  int nonzero = 0;
  for (const double a : {angles.theta, angles.phi, angles.lambda}) {
    if (std::abs(a) > 1e-9) ++nonzero;
  }
  EXPECT_LE(nonzero, 2);
}

// --- Lowering passes: unitary equivalence on exhaustive small circuits ---

void expect_lowering_equivalent(const Circuit& circuit, GateKind target) {
  const Circuit lowered = lower_two_qubit(circuit, target);
  for (const Gate& gate : lowered) {
    if (gate.is_two_qubit()) EXPECT_EQ(gate.kind, target);
  }
  EXPECT_TRUE(circuits_equivalent_exact(circuit, lowered, 1e-7))
      << "lowering to " << gate_info(target).name << " broke circuit "
      << circuit.name();
}

TEST(LowerTwoQubit, ToffoliToCx) {
  Circuit c(3, "ccx");
  c.ccx(0, 1, 2);
  expect_lowering_equivalent(c, GateKind::CX);
}

TEST(LowerTwoQubit, ToffoliToCz) {
  Circuit c(3, "ccx");
  c.ccx(0, 1, 2);
  expect_lowering_equivalent(c, GateKind::CZ);
}

TEST(LowerTwoQubit, ToffoliAllOperandOrders) {
  const int perms[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                           {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  for (const auto& p : perms) {
    Circuit c(3, "ccx_perm");
    c.ccx(p[0], p[1], p[2]);
    expect_lowering_equivalent(c, GateKind::CX);
  }
}

TEST(LowerTwoQubit, FredkinToCx) {
  Circuit c(3, "cswap");
  c.cswap(0, 1, 2);
  expect_lowering_equivalent(c, GateKind::CX);
}

TEST(LowerTwoQubit, IswapToCx) {
  Circuit c(2, "iswap");
  c.iswap(0, 1);
  expect_lowering_equivalent(c, GateKind::CX);
}

TEST(LowerTwoQubit, CPhaseToCx) {
  for (const double lambda : {0.3, kPi / 2.0, -1.7, kPi}) {
    Circuit c(2, "cp");
    c.cp(lambda, 0, 1);
    expect_lowering_equivalent(c, GateKind::CX);
  }
}

TEST(LowerTwoQubit, CrzToCx) {
  for (const double lambda : {0.3, -0.9, kPi}) {
    Circuit c(2, "crz");
    c.crz(lambda, 0, 1);
    expect_lowering_equivalent(c, GateKind::CX);
  }
}

TEST(LowerTwoQubit, SwapBecomesThreeCx) {
  Circuit c(2, "swap");
  c.swap(0, 1);
  const Circuit lowered = lower_two_qubit(c, GateKind::CX);
  EXPECT_EQ(lowered.size(), 3u);
  expect_lowering_equivalent(c, GateKind::CX);
}

TEST(LowerTwoQubit, SwapPreservedWhenRequested) {
  Circuit c(2, "swap");
  c.swap(0, 1);
  const Circuit lowered = lower_two_qubit(c, GateKind::CX, /*keep_swaps=*/true);
  ASSERT_EQ(lowered.size(), 1u);
  EXPECT_EQ(lowered.gate(0).kind, GateKind::SWAP);
}

TEST(LowerTwoQubit, CxToCzUsesHadamards) {
  Circuit c(2, "cx");
  c.cx(0, 1);
  const Circuit lowered = lower_two_qubit(c, GateKind::CZ);
  EXPECT_EQ(lowered.size(), 3u);
  expect_lowering_equivalent(c, GateKind::CZ);
}

TEST(LowerTwoQubit, MixedCircuit) {
  Rng rng(7);
  Circuit c(4, "mixed");
  c.h(0).ccx(0, 1, 2).iswap(2, 3).cp(0.7, 0, 3).swap(1, 2).t(3).cswap(3, 0, 1);
  expect_lowering_equivalent(c, GateKind::CX);
  expect_lowering_equivalent(c, GateKind::CZ);
}

// --- Fusion ---

TEST(Fuse, MergesAdjacentSingleQubitGates) {
  Circuit c(1, "run");
  c.h(0).t(0).h(0).s(0);
  const Circuit fused = fuse_single_qubit(c);
  EXPECT_EQ(fused.size(), 1u);
  EXPECT_EQ(fused.gate(0).kind, GateKind::U);
  EXPECT_TRUE(circuits_equivalent_exact(c, fused, 1e-8));
}

TEST(Fuse, DropsIdentityRuns) {
  Circuit c(1, "identity_run");
  c.h(0).h(0);
  EXPECT_EQ(fuse_single_qubit(c).size(), 0u);
  Circuit c2(1, "xx");
  c2.x(0).x(0);
  EXPECT_EQ(fuse_single_qubit(c2).size(), 0u);
}

TEST(Fuse, StopsAtTwoQubitGates) {
  Circuit c(2, "blocked");
  c.h(0).cx(0, 1).h(0);
  const Circuit fused = fuse_single_qubit(c);
  EXPECT_EQ(fused.size(), 3u);
  EXPECT_TRUE(circuits_equivalent_exact(c, fused, 1e-8));
}

TEST(Fuse, PreservesSemanticsOnRandomCircuits) {
  Rng rng(23);
  for (int trial = 0; trial < 5; ++trial) {
    const Circuit c = workloads::random_circuit(4, 60, rng, 0.3);
    EXPECT_TRUE(circuits_equivalent_exact(c, fuse_single_qubit(c), 1e-7));
  }
}

// --- Device-targeted lowering ---

TEST(LowerToDevice, IbmNativeSet) {
  const Device qx4 = devices::ibm_qx4();
  const Circuit c = workloads::fig1_example();
  const Circuit lowered = lower_to_device(c, qx4);
  for (const Gate& gate : lowered) {
    EXPECT_TRUE(qx4.is_native_kind(gate.kind))
        << "non-native gate " << gate.to_string();
  }
  EXPECT_TRUE(circuits_equivalent_exact(c, lowered, 1e-7));
}

TEST(LowerToDevice, SurfaceNativeSet) {
  const Device s17 = devices::surface17();
  const Circuit c = workloads::fig1_example();
  const Circuit lowered = lower_to_device(c, s17);
  for (const Gate& gate : lowered) {
    EXPECT_TRUE(s17.is_native_kind(gate.kind))
        << "non-native gate " << gate.to_string();
  }
  EXPECT_TRUE(circuits_equivalent_exact(c, lowered, 1e-7));
}

TEST(LowerToDevice, SurfaceRejectsNothingFromStandardZoo) {
  Rng rng(5);
  const Device s17 = devices::surface17();
  const Circuit c = workloads::random_circuit(4, 50, rng, 0.4);
  const Circuit lowered = lower_to_device(c, s17);
  EXPECT_TRUE(circuits_equivalent_exact(c, lowered, 1e-7));
}

// --- Direction fixing and swap expansion ---

TEST(FixDirections, InsertsFourHadamards) {
  const Device qx4 = devices::ibm_qx4();
  Circuit c(5, "wrongway");
  c.cx(0, 1);  // only Q1 -> Q0 is allowed on QX4
  const Circuit fixed = fix_cx_directions(c, qx4);
  EXPECT_EQ(fixed.size(), 5u);  // 4 H + reversed CX
  std::size_t h_count = 0;
  for (const Gate& gate : fixed) {
    if (gate.kind == GateKind::H) ++h_count;
  }
  EXPECT_EQ(h_count, 4u);
  EXPECT_TRUE(circuits_equivalent_exact(c, fixed, 1e-8));
}

TEST(FixDirections, LeavesAllowedCxAlone) {
  const Device qx4 = devices::ibm_qx4();
  Circuit c(5, "rightway");
  c.cx(1, 0);
  const Circuit fixed = fix_cx_directions(c, qx4);
  EXPECT_EQ(fixed.size(), 1u);
}

TEST(FixDirections, ThrowsOnUnconnectedPair) {
  const Device qx4 = devices::ibm_qx4();
  Circuit c(5, "disconnected");
  c.cx(0, 4);
  EXPECT_THROW((void)fix_cx_directions(c, qx4), MappingError);
}

TEST(ExpandSwaps, CxDevice) {
  const Device qx4 = devices::ibm_qx4();
  Circuit c(5, "swap");
  c.swap(1, 0);
  const Circuit expanded = expand_swaps(c, qx4);
  EXPECT_EQ(expanded.size(), 3u);
  EXPECT_TRUE(circuits_equivalent_exact(c, expanded, 1e-8));
}

TEST(ExpandSwaps, CzDeviceMatchesFig6Shape) {
  const Device s17 = devices::surface17();
  Circuit c(17, "swap");
  c.swap(1, 5);
  const Circuit expanded = expand_swaps(c, s17);
  std::size_t cz_count = 0;
  for (const Gate& gate : expanded) {
    if (gate.kind == GateKind::CZ) ++cz_count;
  }
  EXPECT_EQ(cz_count, 3u);  // Fig. 6: SWAP = 3 CZ + single-qubit rotations
}

TEST(SwapCost, ThreeTwoQubitGatesOnBothFamilies) {
  EXPECT_EQ(swap_two_qubit_cost(devices::ibm_qx4()), 3);
  EXPECT_EQ(swap_two_qubit_cost(devices::surface17()), 3);
}

}  // namespace
}  // namespace qmap
