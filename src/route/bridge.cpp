#include "route/bridge.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/error.hpp"
#include "ir/dag.hpp"

namespace qmap {

RoutingResult BridgeRouter::route(const Circuit& circuit, const Device& device,
                                  const Placement& initial) {
  const auto start_time = std::chrono::steady_clock::now();
  check_routable(circuit, device);
  const CouplingGraph& coupling = device.coupling();
  DependencyDag dag(circuit, DagMode::Sequential);
  RoutingEmitter emitter(device, initial,
                         circuit.name() + "@" + device.name());

  std::vector<double> decay(static_cast<std::size_t>(device.num_qubits()),
                            1.0);
  int swaps_since_reset = 0;
  int swaps_since_progress = 0;
  const int stall_limit = 10 * std::max(1, device.num_qubits());

  const auto executable = [&](int node) {
    const Gate& gate = circuit.gate(static_cast<std::size_t>(node));
    if (!gate.is_two_qubit()) return true;
    return coupling.connected(
        emitter.placement().phys_of_program(gate.qubits[0]),
        emitter.placement().phys_of_program(gate.qubits[1]));
  };

  const auto flush_executable = [&] {
    bool progressed = true;
    bool any = false;
    while (progressed) {
      progressed = false;
      // Copy: mark_scheduled mutates the ready list.
      const std::vector<int> ready = dag.ready();
      for (const int node : ready) {
        if (!executable(node)) continue;
        emitter.emit_program_gate(circuit.gate(static_cast<std::size_t>(node)));
        dag.mark_scheduled(node);
        progressed = true;
        any = true;
      }
    }
    return any;
  };

  // Distance of a (program-qubit) two-qubit gate under a placement.
  const auto gate_distance = [&](int node, const Placement& placement) {
    const Gate& gate = circuit.gate(static_cast<std::size_t>(node));
    return phys_distance(device, placement.phys_of_program(gate.qubits[0]),
                         placement.phys_of_program(gate.qubits[1]));
  };

  std::uint64_t iterations = 0;
  std::uint64_t rescues = 0;
  std::uint64_t swaps_avoided = 0;

  while (!dag.all_scheduled()) {
    check_cancelled();
    ++iterations;
    if (flush_executable()) {
      swaps_since_progress = 0;
      continue;
    }
    const std::vector<int> front = dag.ready_two_qubit();
    if (front.empty()) {
      throw MappingError("bridge: stalled with no ready two-qubit gate");
    }

    // Extended lookahead: the next unscheduled 2q gates in program order
    // beyond the front layer.
    std::vector<int> extended;
    for (std::size_t i = 0;
         i < circuit.size() &&
         extended.size() < static_cast<std::size_t>(options_.extended_window);
         ++i) {
      const int node = static_cast<int>(i);
      if (dag.color(node) == NodeColor::Scheduled) continue;
      if (std::find(front.begin(), front.end(), node) != front.end()) continue;
      if (circuit.gate(i).is_two_qubit()) extended.push_back(node);
    }

    // Candidate SWAPs: edges touching a physical qubit that currently holds
    // an operand of a front-layer gate.
    std::vector<bool> relevant(static_cast<std::size_t>(device.num_qubits()),
                               false);
    for (const int node : front) {
      const Gate& gate = circuit.gate(static_cast<std::size_t>(node));
      for (const int q : gate.qubits) {
        relevant[static_cast<std::size_t>(
            emitter.placement().phys_of_program(q))] = true;
      }
    }

    double best_score = std::numeric_limits<double>::infinity();
    int best_a = -1;
    int best_b = -1;
    for (const auto& edge : coupling.edges()) {
      if (!relevant[static_cast<std::size_t>(edge.a)] &&
          !relevant[static_cast<std::size_t>(edge.b)]) {
        continue;
      }
      Placement trial = emitter.placement();
      trial.apply_swap(edge.a, edge.b);
      double front_term = 0.0;
      for (const int node : front) front_term += gate_distance(node, trial);
      front_term /= static_cast<double>(front.size());
      double extended_term = 0.0;
      if (!extended.empty()) {
        for (const int node : extended) {
          extended_term += gate_distance(node, trial);
        }
        extended_term /= static_cast<double>(extended.size());
      }
      const double decay_factor =
          std::max(decay[static_cast<std::size_t>(edge.a)],
                   decay[static_cast<std::size_t>(edge.b)]);
      const double score =
          decay_factor *
          (front_term + options_.extended_weight * extended_term);
      if (score < best_score) {
        best_score = score;
        best_a = edge.a;
        best_b = edge.b;
      }
    }
    if (best_a < 0) {
      throw MappingError("bridge: no candidate SWAP found");
    }

    // BRIDGE decision: a front-layer CX at distance exactly 2 runs in
    // place when the best SWAP would not improve the score of the *other*
    // front gates plus the lookahead window — then the SWAP's only value
    // was this gate, and the bridge gets it for free without perturbing
    // the placement. Decisions are pure reads, emission follows, so one
    // round may bridge several front gates (placement never changes).
    Placement swapped = emitter.placement();
    swapped.apply_swap(best_a, best_b);
    std::vector<int> to_bridge;
    for (const int node : front) {
      const Gate& gate = circuit.gate(static_cast<std::size_t>(node));
      if (gate.kind != GateKind::CX) continue;
      const int phys_c = emitter.placement().phys_of_program(gate.qubits[0]);
      const int phys_t = emitter.placement().phys_of_program(gate.qubits[1]);
      if (phys_distance(device, phys_c, phys_t) != 2) continue;
      double rest_now = 0.0;
      double rest_swapped = 0.0;
      for (const int other : front) {
        if (other == node) continue;
        rest_now += gate_distance(other, emitter.placement());
        rest_swapped += gate_distance(other, swapped);
      }
      for (const int other : extended) {
        rest_now += options_.extended_weight *
                    gate_distance(other, emitter.placement());
        rest_swapped += options_.extended_weight *
                        gate_distance(other, swapped);
      }
      if (rest_swapped < rest_now) continue;  // the SWAP helps others too
      to_bridge.push_back(node);
    }
    if (!to_bridge.empty()) {
      for (const int node : to_bridge) {
        const Gate& gate = circuit.gate(static_cast<std::size_t>(node));
        const int phys_c = emitter.placement().phys_of_program(gate.qubits[0]);
        const int phys_t = emitter.placement().phys_of_program(gate.qubits[1]);
        const std::vector<int> path =
            phys_shortest_path(device, phys_c, phys_t);
        emitter.emit_bridge(phys_c, path[1], phys_t);
        dag.mark_scheduled(node);
      }
      swaps_avoided += to_bridge.size();
      swaps_since_progress = 0;
      continue;
    }

    ++swaps_since_progress;
    if (swaps_since_progress > stall_limit) {
      // Safeguard: force progress by walking the first front gate together
      // along a shortest path (the naive step). Guarantees termination.
      const Gate& gate =
          circuit.gate(static_cast<std::size_t>(front.front()));
      const int pa = emitter.placement().phys_of_program(gate.qubits[0]);
      const int pb = emitter.placement().phys_of_program(gate.qubits[1]);
      const std::vector<int> path = phys_shortest_path(device, pa, pb);
      for (std::size_t i = 0; i + 2 < path.size(); ++i) {
        emitter.emit_swap(path[i], path[i + 1]);
      }
      ++rescues;
      swaps_since_progress = 0;
      continue;
    }

    emitter.emit_swap(best_a, best_b);
    decay[static_cast<std::size_t>(best_a)] += options_.decay_increment;
    decay[static_cast<std::size_t>(best_b)] += options_.decay_increment;
    if (++swaps_since_reset >= options_.decay_reset_interval) {
      std::fill(decay.begin(), decay.end(), 1.0);
      swaps_since_reset = 0;
    }
  }

  const double runtime_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_time)
          .count();
  RoutingResult result = std::move(emitter).finish(initial, runtime_ms);
  // One flush per route() keeps the loop body free of locking.
  obs::add(observer(), "router.bridge.routes");
  obs::add(observer(), "router.bridge.iterations", iterations);
  obs::add(observer(), "router.bridge.rescues", rescues);
  obs::add(observer(), "router.bridge.bridges", result.added_bridges);
  obs::add(observer(), "router.bridge.swaps_avoided", swaps_avoided);
  obs::observe(observer(), "route.swaps_inserted",
               static_cast<double>(result.added_swaps));
  return result;
}

}  // namespace qmap
