#include "verify/shrink.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"

namespace qmap::verify {

Circuit remove_gates(const Circuit& circuit,
                     const std::vector<std::size_t>& removed) {
  std::vector<bool> drop(circuit.size(), false);
  for (const std::size_t i : removed) {
    if (i < circuit.size()) drop[i] = true;
  }
  Circuit out(circuit.num_qubits(), circuit.name());
  out.declare_cbits(circuit.num_cbits());
  for (std::size_t i = 0; i < circuit.size(); ++i) {
    if (!drop[i]) out.add(circuit.gate(i));
  }
  return out;
}

Circuit compact_qubits(const Circuit& circuit) {
  std::vector<bool> used(static_cast<std::size_t>(circuit.num_qubits()),
                         false);
  for (const Gate& gate : circuit) {
    for (const int q : gate.qubits) used[static_cast<std::size_t>(q)] = true;
  }
  std::vector<int> relabel(used.size(), -1);
  int next = 0;
  for (std::size_t q = 0; q < used.size(); ++q) {
    if (used[q]) relabel[q] = next++;
  }
  if (next == circuit.num_qubits()) return circuit;  // nothing idle
  Circuit out(std::max(next, 1), circuit.name());
  out.declare_cbits(circuit.num_cbits());
  for (const Gate& gate : circuit) {
    Gate moved = gate;
    for (int& q : moved.qubits) q = relabel[static_cast<std::size_t>(q)];
    out.add(std::move(moved));
  }
  return out;
}

Shrinker::Result Shrinker::shrink(const Circuit& failing,
                                  const Predicate& still_fails) const {
  Result result;
  result.original_gates = failing.size();

  const auto budget_left = [this, &result] {
    return options_.max_tests == 0 || result.tests < options_.max_tests;
  };
  const auto test = [&](const Circuit& candidate) {
    // Every evaluation typically re-runs a full compile, so polling here
    // bounds the whole ddmin loop by the token's deadline.
    if (options_.cancel != nullptr) options_.cancel->check();
    ++result.tests;
    return still_fails(candidate);
  };

  if (!test(failing)) {
    throw MappingError(
        "Shrinker: the input circuit does not satisfy the failure "
        "predicate; nothing to minimize");
  }

  Circuit current = failing;
  bool changed = true;
  while (changed && budget_left()) {
    changed = false;
    ++result.rounds;
    // ddmin over the gate list: chunk sizes n/2, n/4, ..., 1. Removing a
    // chunk that keeps the failure restarts at that granularity, so large
    // simplifications are found before single-gate polishing.
    for (std::size_t chunk = std::max<std::size_t>(current.size() / 2, 1);
         chunk >= 1 && budget_left(); chunk /= 2) {
      bool removed_any = true;
      while (removed_any && budget_left()) {
        removed_any = false;
        for (std::size_t begin = 0; begin < current.size() && budget_left();) {
          std::vector<std::size_t> indices;
          for (std::size_t i = begin;
               i < std::min(begin + chunk, current.size()); ++i) {
            indices.push_back(i);
          }
          const Circuit candidate = remove_gates(current, indices);
          if (candidate.size() < current.size() && test(candidate)) {
            current = candidate;
            changed = true;
            removed_any = true;
            // Do not advance: the chunk at `begin` is now different gates.
          } else {
            begin += chunk;
          }
        }
      }
      if (chunk == 1) break;
    }
    if (options_.drop_idle_qubits && budget_left()) {
      const Circuit compacted = compact_qubits(current);
      if (compacted.num_qubits() < current.num_qubits() && test(compacted)) {
        current = compacted;
        changed = true;
      }
    }
  }
  result.circuit = std::move(current);
  return result;
}

}  // namespace qmap::verify
