// The sabre-family main loop, shared by the materialized routers
// (sabre.cpp, bridge.cpp over RouteCore) and the streaming drivers
// (stream_core.cpp over StreamRouteCore).
//
// This is a pure extraction: the loop body is the exact decision
// sequence the two routers previously duplicated — flush-to-fixpoint,
// front refresh, extended lookahead, per-edge swap scoring with decay,
// the optional BRIDGE decision, the stall rescue, and the decay-reset
// bookkeeping. Keeping it in one template is what makes the streamed
// and materialized paths byte-identical by construction: both
// instantiations run the same statements in the same order, only the
// Core behind them differs (full CSR DAG vs sliding window). The golden
// fingerprint matrix (tests/test_route_ir.cpp) pins that neither
// instantiation drifts.
//
// Core concept (duck-typed):
//   bool all_scheduled();
//   bool flush(RoutingEmitter&);              // emit executables, fixpoint
//   void refresh_front();
//   std::uint32_t front_size() const;
//   const std::uint32_t* front_gates() const; // ready 2q nodes, ascending
//   std::size_t ext_cap() const;              // lookahead quota this round
//   std::uint32_t collect_extended(std::size_t cap, std::uint32_t* out);
//   void mark_relevant(std::uint8_t* relevant) const;
//   void collect_endpoints(const std::uint32_t* nodes, std::uint32_t count,
//                          std::int32_t* pa, std::int32_t* pb) const;
//   int dist_pair(std::int32_t pa, std::int32_t pb) const;
//   int dist_pair_swapped(std::int32_t pa, std::int32_t pb, int ea, int eb);
//   GateKind kind_of(std::uint32_t node) const;
//   int gate_dist(std::uint32_t node) const;
//   int phys_q0(std::uint32_t node) const;    // phys of first operand
//   int phys_q1(std::uint32_t node) const;
//   std::vector<int> shortest_path(int a, int b) const;
//   void emit_swap(RoutingEmitter&, int phys_a, int phys_b);
//   void mark_front_scheduled(std::uint32_t node);  // bridge bookkeeping
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "arch/topology.hpp"
#include "common/error.hpp"
#include "route/route_ir.hpp"
#include "route/router.hpp"

namespace qmap {

struct SabreLoopParams {
  double extended_weight = 0.5;
  double decay_increment = 0.1;
  int decay_reset_interval = 5;
  bool enable_bridge = false;
  const char* label = "sabre";  // error-message prefix
};

/// Scratch buffers for the loop, owned by the core (arena-backed for the
/// materialized routers, vector-backed for the streaming ones) and
/// exposed via Core::buffers(). `extended`, `ext_pa`, `ext_pb` need
/// capacity >= the largest ext_cap() the core will report; `front_pa`/
/// `front_pb` capacity >= the current front layer and `to_bridge`
/// likewise (null unless enable_bridge) — a streaming core may grow
/// those (and so move the pointers) inside refresh_front(), which is why
/// the loop re-reads buffers() after each refresh. `decay` and
/// `relevant` are num_phys-sized and must stay stable across the whole
/// loop (decay accumulates state between iterations).
struct SabreLoopBuffers {
  double* decay = nullptr;          // num_phys
  std::uint8_t* relevant = nullptr; // num_phys
  std::uint32_t* extended = nullptr;
  std::uint32_t* to_bridge = nullptr;
  std::int32_t* front_pa = nullptr;
  std::int32_t* front_pb = nullptr;
  std::int32_t* ext_pa = nullptr;
  std::int32_t* ext_pb = nullptr;
};

struct SabreLoopStats {
  std::uint64_t iterations = 0;
  std::uint64_t rescues = 0;
  std::uint64_t swaps_avoided = 0;  // bridged front gates
};

template <class Core, class CheckCancel>
SabreLoopStats run_sabre_loop(Core& core, RoutingEmitter& emitter,
                              const CouplingGraph& coupling, int num_phys,
                              const SabreLoopParams& params,
                              CheckCancel&& check_cancelled) {
  double* const decay = core.buffers().decay;
  std::fill(decay, decay + num_phys, 1.0);
  int swaps_since_reset = 0;
  int swaps_since_progress = 0;
  const int stall_limit = 10 * std::max(1, num_phys);

  SabreLoopStats stats;

  while (!core.all_scheduled()) {
    check_cancelled();
    ++stats.iterations;
    if (core.flush(emitter)) {
      swaps_since_progress = 0;
      continue;
    }
    core.refresh_front();
    const std::uint32_t front_size = core.front_size();
    if (front_size == 0) {
      throw MappingError(std::string(params.label) +
                         ": stalled with no ready two-qubit gate");
    }
    const std::uint32_t* front_gates = core.front_gates();
    const SabreLoopBuffers& buffers = core.buffers();

    // Extended lookahead: the next unscheduled 2q gates in program order
    // beyond the front layer.
    const std::uint32_t num_extended =
        core.collect_extended(core.ext_cap(), buffers.extended);

    // Candidate SWAPs: edges touching a physical qubit that currently holds
    // an operand of a front-layer gate.
    core.mark_relevant(buffers.relevant);
    core.collect_endpoints(front_gates, front_size, buffers.front_pa,
                           buffers.front_pb);
    core.collect_endpoints(buffers.extended, num_extended, buffers.ext_pa,
                           buffers.ext_pb);

    double best_score = std::numeric_limits<double>::infinity();
    int best_a = -1;
    int best_b = -1;
    for (const auto& edge : coupling.edges()) {
      if (!buffers.relevant[edge.a] && !buffers.relevant[edge.b]) continue;
      double front_term = 0.0;
      for (std::uint32_t k = 0; k < front_size; ++k) {
        front_term += core.dist_pair_swapped(buffers.front_pa[k],
                                             buffers.front_pb[k], edge.a,
                                             edge.b);
      }
      front_term /= static_cast<double>(front_size);
      double extended_term = 0.0;
      if (num_extended > 0) {
        for (std::uint32_t k = 0; k < num_extended; ++k) {
          extended_term += core.dist_pair_swapped(buffers.ext_pa[k],
                                                  buffers.ext_pb[k], edge.a,
                                                  edge.b);
        }
        extended_term /= static_cast<double>(num_extended);
      }
      const double decay_factor =
          std::max(decay[edge.a], decay[edge.b]);
      const double score =
          decay_factor * (front_term + params.extended_weight * extended_term);
      if (score < best_score) {
        best_score = score;
        best_a = edge.a;
        best_b = edge.b;
      }
    }
    if (best_a < 0) {
      throw MappingError(std::string(params.label) +
                         ": no candidate SWAP found");
    }

    if (params.enable_bridge) {
      // BRIDGE decision: a front-layer CX at distance exactly 2 runs in
      // place when the best SWAP would not improve the score of the *other*
      // front gates plus the lookahead window — then the SWAP's only value
      // was this gate, and the bridge gets it for free without perturbing
      // the placement. Decisions are pure reads, emission follows, so one
      // round may bridge several front gates (placement never changes).
      std::uint32_t num_to_bridge = 0;
      for (std::uint32_t k = 0; k < front_size; ++k) {
        const std::uint32_t node = front_gates[k];
        if (core.kind_of(node) != GateKind::CX) continue;
        if (core.gate_dist(node) != 2) continue;
        double rest_now = 0.0;
        double rest_swapped = 0.0;
        for (std::uint32_t j = 0; j < front_size; ++j) {
          if (front_gates[j] == node) continue;
          rest_now += core.dist_pair(buffers.front_pa[j], buffers.front_pb[j]);
          rest_swapped += core.dist_pair_swapped(
              buffers.front_pa[j], buffers.front_pb[j], best_a, best_b);
        }
        for (std::uint32_t j = 0; j < num_extended; ++j) {
          rest_now += params.extended_weight *
                      core.dist_pair(buffers.ext_pa[j], buffers.ext_pb[j]);
          rest_swapped += params.extended_weight *
                          core.dist_pair_swapped(buffers.ext_pa[j],
                                                 buffers.ext_pb[j], best_a,
                                                 best_b);
        }
        if (rest_swapped < rest_now) continue;  // the SWAP helps others too
        buffers.to_bridge[num_to_bridge++] = node;
      }
      if (num_to_bridge > 0) {
        for (std::uint32_t k = 0; k < num_to_bridge; ++k) {
          const std::uint32_t node = buffers.to_bridge[k];
          const int phys_c = core.phys_q0(node);
          const int phys_t = core.phys_q1(node);
          const std::vector<int> path = core.shortest_path(phys_c, phys_t);
          emitter.emit_bridge(phys_c, path[1], phys_t);
          core.mark_front_scheduled(node);
        }
        stats.swaps_avoided += num_to_bridge;
        swaps_since_progress = 0;
        continue;
      }
    }

    ++swaps_since_progress;
    if (swaps_since_progress > stall_limit) {
      // Safeguard: force progress by walking the first front gate together
      // along a shortest path (the naive step). Guarantees termination.
      const std::uint32_t gate = front_gates[0];
      const int pa = core.phys_q0(gate);
      const int pb = core.phys_q1(gate);
      const std::vector<int> path = core.shortest_path(pa, pb);
      for (std::size_t i = 0; i + 2 < path.size(); ++i) {
        core.emit_swap(emitter, path[i], path[i + 1]);
      }
      ++stats.rescues;
      swaps_since_progress = 0;
      continue;
    }

    core.emit_swap(emitter, best_a, best_b);
    decay[best_a] += params.decay_increment;
    decay[best_b] += params.decay_increment;
    if (++swaps_since_reset >= params.decay_reset_interval) {
      std::fill(decay, decay + num_phys, 1.0);
      swaps_since_reset = 0;
    }
  }
  return stats;
}

/// RouteCore adapter for run_sabre_loop: the materialized path. ext_cap
/// is fixed at min(extended_window, total two-qubit gates) — the whole
/// circuit is resident, so the quota never changes mid-route.
class MaterializedLoopCore {
 public:
  MaterializedLoopCore(RouteCore& core, std::size_t ext_cap,
                       const SabreLoopBuffers& buffers)
      : core_(&core), ext_cap_(ext_cap), buffers_(buffers) {}

  [[nodiscard]] const SabreLoopBuffers& buffers() const { return buffers_; }
  [[nodiscard]] bool all_scheduled() const {
    return core_->front.all_scheduled();
  }
  bool flush(RoutingEmitter& emitter) {
    return core_->flush_executable(emitter, [](std::uint32_t) {});
  }
  void refresh_front() { core_->refresh_front(); }
  [[nodiscard]] std::uint32_t front_size() const { return core_->front_size; }
  [[nodiscard]] const std::uint32_t* front_gates() const {
    return core_->front_gates;
  }
  [[nodiscard]] std::size_t ext_cap() const { return ext_cap_; }
  std::uint32_t collect_extended(std::size_t cap, std::uint32_t* out) {
    return core_->collect_extended(cap, out);
  }
  void mark_relevant(std::uint8_t* relevant) const {
    core_->mark_relevant(relevant);
  }
  void collect_endpoints(const std::uint32_t* nodes, std::uint32_t count,
                         std::int32_t* pa, std::int32_t* pb) const {
    core_->collect_endpoints(nodes, count, pa, pb);
  }
  [[nodiscard]] int dist_pair(std::int32_t pa, std::int32_t pb) const {
    return core_->dist_pair(pa, pb);
  }
  [[nodiscard]] int dist_pair_swapped(std::int32_t pa, std::int32_t pb,
                                      int ea, int eb) const {
    return core_->dist_pair_swapped(pa, pb, ea, eb);
  }
  [[nodiscard]] GateKind kind_of(std::uint32_t node) const {
    return core_->ir.gate_kind(node);
  }
  [[nodiscard]] int gate_dist(std::uint32_t node) const {
    return core_->gate_dist(node);
  }
  [[nodiscard]] int phys_q0(std::uint32_t node) const {
    return core_->phys_of(core_->ir.q0[node]);
  }
  [[nodiscard]] int phys_q1(std::uint32_t node) const {
    return core_->phys_of(core_->ir.q1[node]);
  }
  [[nodiscard]] std::vector<int> shortest_path(int a, int b) const {
    return core_->shortest_path(a, b);
  }
  void emit_swap(RoutingEmitter& emitter, int phys_a, int phys_b) {
    core_->emit_swap(emitter, phys_a, phys_b);
  }
  void mark_front_scheduled(std::uint32_t node) {
    core_->front.mark_scheduled(node);
  }

 private:
  RouteCore* core_;
  std::size_t ext_cap_;
  SabreLoopBuffers buffers_;
};

}  // namespace qmap
