// Golden-file QASM round-trip tests.
//
// Each case parses a committed example circuit, maps it with a fixed
// deterministic strategy, writes the final circuit as OpenQASM, and
// compares the bytes against a committed golden file. This pins down the
// whole parse -> map -> write chain: a formatting change, a gate-order
// change, or a nondeterminism regression in a placer/router shows up as
// a golden diff instead of a silent behavior change.
//
// Regenerating after an intentional change:
//   QMAP_REGEN_GOLDEN=1 ./build/tests/test_golden
// then review and commit the diff under tests/golden/.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/compiler.hpp"
#include "qasm/openqasm.hpp"
#include "verify/reproducer.hpp"
#include "verify/validity.hpp"

namespace qmap {
namespace {

struct GoldenCase {
  std::string circuit;  // stem under examples/circuits/
  std::string device;   // verify::device_by_name string
  std::string placer;
  std::string router;
};

std::string case_name(const testing::TestParamInfo<GoldenCase>& info) {
  std::string name = info.param.circuit + "_" + info.param.device + "_" +
                     info.param.placer + "_" + info.param.router;
  for (char& c : name) {
    if (c == '+') c = 'P';
  }
  return name;
}

// Deterministic strategies only: goldens must not depend on the seed.
const GoldenCase kCases[] = {
    {"fig1", "ibm_qx4", "greedy", "sabre"},
    {"fig1", "surface17", "greedy", "qmap"},
    {"ghz5", "ibm_qx5", "greedy", "sabre"},
    {"ghz5", "surface7", "identity", "naive"},
    {"qft4", "surface7", "greedy", "astar"},
    {"qft4", "ibm_qx4", "greedy", "qmap"},
    {"qft4", "ibm_qx5", "greedy", "bridge"},
    {"bv5", "ibm_qx4", "identity", "sabre"},
};

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) ADD_FAILURE() << "cannot read " << path;
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

class GoldenMapping : public testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenMapping, ParseMapWriteMatchesGolden) {
  const GoldenCase& param = GetParam();
  const Circuit input = load_openqasm(std::string(QMAP_EXAMPLES_DIR) +
                                      "/circuits/" + param.circuit + ".qasm");
  const Device device = verify::device_by_name(param.device);

  CompilerOptions options;
  options.placer = param.placer;
  options.router = param.router;
  const CompilationResult result = Compiler(device, options).compile(input);

  // The mapped circuit must be valid before it becomes a golden.
  const verify::ValidityReport audit =
      verify::ValidityChecker(device).check_result(result);
  ASSERT_TRUE(audit.ok()) << audit.to_string();

  // The bridge case is only a meaningful golden if the 4-CX BRIDGE
  // template actually fired — otherwise it degenerates to a SABRE pin.
  if (param.router == "bridge") {
    EXPECT_GT(result.routing.added_bridges, 0u)
        << "expected at least one BRIDGE in the golden circuit";
  }

  const std::string written = to_openqasm(result.final_circuit);
  const std::string golden_path = std::string(QMAP_GOLDEN_DIR) + "/" +
                                  param.circuit + "_" + param.device + "_" +
                                  param.placer + "_" + param.router + ".qasm";

  const char* regen = std::getenv("QMAP_REGEN_GOLDEN");
  if (regen != nullptr && *regen != '\0') {
    std::ofstream out(golden_path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << golden_path;
    out << written;
    GTEST_SKIP() << "regenerated " << golden_path;
  }

  EXPECT_EQ(written, read_file(golden_path))
      << "mapped output drifted from " << golden_path
      << " (QMAP_REGEN_GOLDEN=1 regenerates after an intentional change)";

  // The written circuit must re-parse, and the writer must be a fixpoint
  // on its own output (byte-stable round-trip).
  const Circuit reparsed = parse_openqasm(written);
  EXPECT_EQ(reparsed.size(), result.final_circuit.size());
  EXPECT_EQ(to_openqasm(reparsed), written);
}

INSTANTIATE_TEST_SUITE_P(AllCases, GoldenMapping, testing::ValuesIn(kCases),
                         case_name);

TEST(ExampleCircuits, AllParseAndRoundTrip) {
  for (const char* stem : {"fig1", "ghz5", "qft4", "bv5"}) {
    const std::string path =
        std::string(QMAP_EXAMPLES_DIR) + "/circuits/" + stem + ".qasm";
    const Circuit circuit = load_openqasm(path);
    EXPECT_GT(circuit.size(), 0u) << path;
    const std::string written = to_openqasm(circuit);
    const Circuit reparsed = parse_openqasm(written);
    EXPECT_EQ(to_openqasm(reparsed), written) << path;
    EXPECT_EQ(reparsed.size(), circuit.size()) << path;
    EXPECT_EQ(reparsed.num_qubits(), circuit.num_qubits()) << path;
  }
}

}  // namespace
}  // namespace qmap
