#include "service/cache.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/digest.hpp"

namespace qmap::service {

std::size_t CachedOutcome::bytes() const {
  // String payloads plus a flat per-entry overhead for the map node, LRU
  // node, and control block. Approximate on purpose: the budget bounds
  // memory to the right order, it is not an allocator audit.
  return fingerprint.size() + fingerprint_digest.size() +
         outcome_json.size() + winner_label.size() + error.size() + 160;
}

void ResultCache::Flight::retain_interest() noexcept {
  interest_.fetch_add(1, std::memory_order_relaxed);
}

void ResultCache::Flight::drop_interest() noexcept {
  if (interest_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    token_.cancel();
  }
}

ResultCache::ResultCache(CacheConfig config) : config_(std::move(config)) {
  const int shards = std::max(1, config_.shards);
  config_.shards = shards;
  shard_budget_ = std::max<std::size_t>(
      1, config_.max_bytes / static_cast<std::size_t>(shards));
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::size_t ResultCache::shard_of(const std::string& key) const {
  // Keys are already well-mixed digests, but re-hash so raw test keys
  // ("a", "b", ...) still spread.
  return fnv1a64(key) % shards_.size();
}

std::int64_t ResultCache::now_us() const {
  if (config_.now_us) return config_.now_us();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void ResultCache::update_gauges() const {
  obs::set_gauge(config_.obs, "service.cache.bytes",
                 static_cast<double>(bytes_.load(std::memory_order_relaxed)));
  obs::set_gauge(config_.obs, "service.cache.entries",
                 static_cast<double>(entries_.load(std::memory_order_relaxed)));
}

ResultCache::Lookup ResultCache::acquire(const std::string& key) {
  const std::size_t index = shard_of(key);
  Shard& shard = *shards_[index];
  Lookup lookup;

  std::unique_lock<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    Entry& entry = it->second;
    if (entry.expires_us != 0 && now_us() >= entry.expires_us) {
      // Negative entry aged out: erase and fall through to a fresh flight.
      const std::size_t freed = entry.bytes;
      shard.bytes -= freed;
      shard.lru.erase(entry.lru_it);
      shard.entries.erase(it);
      expired_.fetch_add(1, std::memory_order_relaxed);
      entries_.fetch_sub(1, std::memory_order_relaxed);
      bytes_.fetch_sub(freed, std::memory_order_relaxed);
      obs::add(config_.obs, "service.cache.expired");
    } else {
      shard.lru.splice(shard.lru.begin(), shard.lru, entry.lru_it);
      lookup.kind = Lookup::Kind::Hit;
      lookup.value = entry.value;
      if (entry.value->ok) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        obs::add(config_.obs, "service.cache.hit");
      } else {
        negative_hits_.fetch_add(1, std::memory_order_relaxed);
        obs::add(config_.obs, "service.cache.negative_hit");
      }
      return lookup;
    }
  }

  auto flight_it = shard.flights.find(key);
  if (flight_it != shard.flights.end()) {
    flight_it->second->retain_interest();
    lookup.kind = Lookup::Kind::Follower;
    lookup.flight = flight_it->second;
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    obs::add(config_.obs, "service.cache.coalesced");
    return lookup;
  }

  auto flight = std::make_shared<Flight>(key, index);
  shard.flights.emplace(key, flight);
  lookup.kind = Lookup::Kind::Leader;
  lookup.flight = std::move(flight);
  misses_.fetch_add(1, std::memory_order_relaxed);
  obs::add(config_.obs, "service.cache.miss");
  return lookup;
}

void ResultCache::insert_locked(Shard& shard, const std::string& key,
                                std::shared_ptr<const CachedOutcome> value) {
  const std::size_t bytes = value->bytes();
  if (bytes > shard_budget_) {
    insert_rejected_.fetch_add(1, std::memory_order_relaxed);
    obs::add(config_.obs, "service.cache.insert_rejected");
    return;
  }

  auto existing = shard.entries.find(key);
  if (existing != shard.entries.end()) {
    const std::size_t freed = existing->second.bytes;
    shard.bytes -= freed;
    shard.lru.erase(existing->second.lru_it);
    shard.entries.erase(existing);
    entries_.fetch_sub(1, std::memory_order_relaxed);
    bytes_.fetch_sub(freed, std::memory_order_relaxed);
  }

  while (shard.bytes + bytes > shard_budget_ && !shard.lru.empty()) {
    const std::string& victim_key = shard.lru.back();
    auto victim = shard.entries.find(victim_key);
    shard.bytes -= victim->second.bytes;
    entries_.fetch_sub(1, std::memory_order_relaxed);
    bytes_.fetch_sub(victim->second.bytes, std::memory_order_relaxed);
    shard.entries.erase(victim);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    obs::add(config_.obs, "service.cache.evictions");
  }

  Entry entry;
  entry.bytes = bytes;
  entry.expires_us =
      value->ok ? 0
                : now_us() + static_cast<std::int64_t>(
                                 config_.negative_ttl_ms * 1000.0);
  shard.lru.push_front(key);
  entry.lru_it = shard.lru.begin();
  entry.value = std::move(value);
  shard.bytes += bytes;
  shard.entries.emplace(key, std::move(entry));
  entries_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

void ResultCache::complete(const std::shared_ptr<Flight>& flight,
                           CachedOutcome outcome, bool store) {
  auto value = std::make_shared<const CachedOutcome>(std::move(outcome));
  {
    Shard& shard = *shards_[flight->shard_];
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.flights.erase(flight->key_);
    if (store && (value->ok || config_.negative_ttl_ms > 0.0)) {
      insert_locked(shard, flight->key_, value);
    }
  }
  update_gauges();
  {
    std::lock_guard<std::mutex> lock(flight->mutex_);
    flight->result_ = std::move(value);
    flight->done_ = true;
  }
  flight->done_cv_.notify_all();
}

void ResultCache::abandon(const std::shared_ptr<Flight>& flight) {
  {
    Shard& shard = *shards_[flight->shard_];
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.flights.erase(flight->key_);
  }
  {
    std::lock_guard<std::mutex> lock(flight->mutex_);
    flight->result_ = nullptr;
    flight->done_ = true;
  }
  flight->done_cv_.notify_all();
}

std::shared_ptr<const CachedOutcome> ResultCache::wait(
    const std::shared_ptr<Flight>& flight) const {
  std::unique_lock<std::mutex> lock(flight->mutex_);
  flight->done_cv_.wait(lock, [&flight] { return flight->done_; });
  return flight->result_;
}

std::shared_ptr<const CachedOutcome> ResultCache::lookup(
    const std::string& key) {
  Shard& shard = *shards_[shard_of(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return nullptr;
  Entry& entry = it->second;
  if (entry.expires_us != 0 && now_us() >= entry.expires_us) {
    const std::size_t freed = entry.bytes;
    shard.bytes -= freed;
    shard.lru.erase(entry.lru_it);
    expired_.fetch_add(1, std::memory_order_relaxed);
    entries_.fetch_sub(1, std::memory_order_relaxed);
    bytes_.fetch_sub(freed, std::memory_order_relaxed);
    shard.entries.erase(it);
    obs::add(config_.obs, "service.cache.expired");
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, entry.lru_it);
  return entry.value;
}

void ResultCache::insert(const std::string& key, CachedOutcome outcome) {
  auto value = std::make_shared<const CachedOutcome>(std::move(outcome));
  if (!value->ok && config_.negative_ttl_ms <= 0.0) return;
  {
    Shard& shard = *shards_[shard_of(key)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    insert_locked(shard, key, std::move(value));
  }
  update_gauges();
}

CacheStats ResultCache::stats() const {
  CacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.negative_hits = negative_hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.coalesced = coalesced_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.expired = expired_.load(std::memory_order_relaxed);
  stats.insert_rejected = insert_rejected_.load(std::memory_order_relaxed);
  stats.bytes = bytes_.load(std::memory_order_relaxed);
  stats.entries = entries_.load(std::memory_order_relaxed);
  return stats;
}

void ResultCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    bytes_.fetch_sub(shard->bytes, std::memory_order_relaxed);
    entries_.fetch_sub(shard->entries.size(), std::memory_order_relaxed);
    shard->entries.clear();
    shard->lru.clear();
    shard->bytes = 0;
  }
  update_gauges();
}

}  // namespace qmap::service
