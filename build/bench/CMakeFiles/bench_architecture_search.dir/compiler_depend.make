# Empty compiler generated dependencies file for bench_architecture_search.
# This may be replaced when dependencies are built.
