# Empty compiler generated dependencies file for example_compare_routers.
# This may be replaced when dependencies are built.
