# Empty dependencies file for qmap_noise.
# This may be replaced when dependencies are built.
