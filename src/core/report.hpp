// Fixed-width text tables for the benchmark harness output — every bench
// prints the rows/series its paper figure reports through this helper.
#pragma once

#include <string>
#include <vector>

namespace qmap {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds a row; must have as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  [[nodiscard]] static std::string num(double value, int precision = 2);
  [[nodiscard]] static std::string num(int value) {
    return std::to_string(value);
  }
  [[nodiscard]] static std::string num(long value) {
    return std::to_string(value);
  }
  [[nodiscard]] static std::string num(std::size_t value) {
    return std::to_string(value);
  }

  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qmap
