// Streaming compilation tests (`ctest -L stream`).
//
// The out-of-core pipeline's contract is byte identity: every streaming
// component — the chunked OpenQASM reader/writer, the sliding-window
// routers, the windowed pass pipeline — must produce exactly the bytes
// its materialized counterpart produces, for every chunk size. These
// tests pin that contract, plus the line/column diagnostics of the
// incremental parser and the thread-handoff determinism that tier1.sh
// re-runs under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/digest.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "decompose/decomposer.hpp"
#include "ir/circuit.hpp"
#include "ir/gate_stream.hpp"
#include "ir/pipe_stream.hpp"
#include "layout/placers.hpp"
#include "pass/manager.hpp"
#include "pass/passes.hpp"
#include "qasm/openqasm.hpp"
#include "qasm/stream.hpp"
#include "route/bridge.hpp"
#include "route/router.hpp"
#include "route/sabre.hpp"
#include "verify/reproducer.hpp"
#include "workloads/stream_workloads.hpp"
#include "workloads/workloads.hpp"

// --- Counting global allocator (satellite: emit-path allocation audit) ---
//
// Replacing the global operator new lets the token-swap-finisher audit
// assert that its allocation count is independent of the routed prefix
// length: the pre-splice pass rebuilt the circuit gate-by-gate, costing
// two allocations per prefix gate (each Gate owns its qubit/param
// vectors). Relaxed atomics keep the threaded tests clean under TSan.
namespace {
std::atomic<std::size_t> g_allocation_count{0};
}  // namespace

// GCC cannot see that the replaced operator new/delete pair is internally
// consistent (malloc in, free out) and flags every inlined call site.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace qmap {
namespace {

Circuit stream_test_circuit(std::uint64_t seed, int num_qubits = 5,
                            int num_gates = 60) {
  Rng rng(Rng::derive_stream(0x57E4, seed));
  Circuit circuit =
      workloads::random_circuit(num_qubits, num_gates, rng, 0.5);
  circuit.measure_all();
  return circuit;
}

// --- OpenQASM istream overload (satellite: parse_openqasm(std::istream&)) ---

TEST(QasmIstream, ParityWithStringParse) {
  const std::string text = to_openqasm(workloads::qft(5));
  const Circuit from_string = parse_openqasm(text);
  std::istringstream in(text);
  const Circuit from_stream = parse_openqasm(in);
  EXPECT_EQ(to_openqasm(from_stream), to_openqasm(from_string));
  EXPECT_EQ(from_stream.num_qubits(), from_string.num_qubits());
  EXPECT_EQ(from_stream.size(), from_string.size());
}

TEST(QasmIstream, MalformedMidStreamReportsLineAndColumn) {
  // The bad statement sits on line 5, after several valid ones — a
  // regression guard for the incremental lexer's position tracking.
  const std::string text =
      "OPENQASM 2.0;\n"
      "include \"qelib1.inc\";\n"
      "qreg q[3];\n"
      "h q[0];\n"
      "frobnicate q[1];\n"
      "cx q[0], q[2];\n";
  std::istringstream in(text);
  try {
    (void)parse_openqasm(in);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 5) << e.what();
    EXPECT_GT(e.column(), 0) << e.what();
    EXPECT_NE(std::string(e.what()).find("(line 5"), std::string::npos);
  }
}

TEST(QasmIstream, CommentsDoNotShiftReportedLines) {
  const std::string text =
      "OPENQASM 2.0;\n"
      "// a comment line\n"
      "qreg q[2];\n"
      "// another comment\n"
      "h q[0];\n"
      "cx q[0], q[9];\n";  // out-of-range index on line 6
  std::istringstream in(text);
  try {
    (void)parse_openqasm(in);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 6) << e.what();
  }
}

TEST(QasmIstream, MissingFinalSemicolonReportsStatementStart) {
  const std::string text =
      "OPENQASM 2.0;\n"
      "qreg q[2];\n"
      "h q[0]";
  std::istringstream in(text);
  try {
    (void)parse_openqasm(in);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("missing ';'"), std::string::npos);
    EXPECT_EQ(e.line(), 3) << e.what();
  }
}

TEST(QasmIstream, UnterminatedGateDefinitionThrows) {
  const std::string text =
      "OPENQASM 2.0;\n"
      "qreg q[2];\n"
      "gate foo a, b {\n"
      "  cx a, b;\n";
  std::istringstream in(text);
  EXPECT_THROW((void)parse_openqasm(in), ParseError);
}

// --- Chunked OpenQASM source/sink vs the materialized front end ---

TEST(QasmStream, SourceMatchesMaterializedParse) {
  const Circuit circuit = stream_test_circuit(1);
  const std::string text = to_openqasm(circuit);
  const Circuit materialized = parse_openqasm(text);

  std::istringstream in(text);
  QasmStreamSource source(in);
  EXPECT_EQ(source.num_qubits(), materialized.num_qubits());
  EXPECT_EQ(source.num_cbits(), materialized.num_cbits());
  CircuitSink sink(source.num_qubits(), "streamed");
  std::vector<Gate> chunk;
  // A deliberately awkward chunk size so pulls straddle statements.
  while (source.pull(chunk, 7) > 0) {
    sink.put_chunk(chunk);
    chunk.clear();
  }
  EXPECT_EQ(to_openqasm(sink.circuit()), text);
}

TEST(QasmStream, SinkMatchesToOpenqasm) {
  const Circuit circuit = stream_test_circuit(2);
  std::ostringstream out;
  QasmStreamSink sink(out, circuit.num_qubits(), circuit.num_cbits());
  CircuitSource source(circuit);
  std::vector<Gate> chunk;
  while (source.pull(chunk, 5) > 0) {
    sink.put_chunk(chunk);
    chunk.clear();
  }
  sink.flush();
  EXPECT_EQ(out.str(), to_openqasm(circuit));
  EXPECT_EQ(sink.gates_written(), circuit.size());
}

TEST(QasmStream, SinkRejectsUndeclaredClassicalBit) {
  std::ostringstream out;
  QasmStreamSink sink(out, 2, 1);
  Gate measure;
  measure.kind = GateKind::Measure;
  measure.qubits = {1};
  measure.cbit = 1;  // only c[0] declared
  EXPECT_THROW(sink.put(std::move(measure)), CircuitError);
}

// --- In-memory adapters ---

TEST(GateStream, CircuitRoundTripAcrossChunkSizes) {
  const Circuit circuit = stream_test_circuit(3);
  for (const std::size_t chunk_size : {std::size_t{1}, std::size_t{7},
                                       std::size_t{1024}}) {
    CircuitSource source(circuit);
    CircuitSink sink(circuit.num_qubits(), circuit.name());
    std::vector<Gate> chunk;
    while (source.pull(chunk, chunk_size) > 0) {
      sink.put_chunk(chunk);
      chunk.clear();
    }
    EXPECT_EQ(to_openqasm(sink.circuit()), to_openqasm(circuit))
        << "chunk size " << chunk_size;
  }
}

TEST(GateStream, CountingSinkCounts) {
  const Circuit circuit = stream_test_circuit(4);
  std::size_t two_qubit = 0;
  for (const Gate& gate : circuit) {
    if (gate.is_two_qubit()) ++two_qubit;
  }
  CountingSink sink;
  CircuitSource source(circuit);
  std::vector<Gate> chunk;
  while (source.pull(chunk, 13) > 0) {
    sink.put_chunk(chunk);
    chunk.clear();
  }
  EXPECT_EQ(sink.total_gates(), circuit.size());
  EXPECT_EQ(sink.two_qubit_gates(), two_qubit);
}

// --- Streaming route vs materialized route: the byte-parity matrix ---

struct StreamedRoute {
  Circuit circuit;
  StreamRouteStats stats;
};

std::unique_ptr<Router> make_router(const std::string& name) {
  if (name == "bridge") return std::make_unique<BridgeRouter>();
  return std::make_unique<SabreRouter>();
}

StreamedRoute route_streamed(const std::string& router_name,
                             const Circuit& circuit, const Device& device,
                             const Placement& placement,
                             std::size_t chunk_gates,
                             std::size_t spill_gates) {
  const std::unique_ptr<Router> router = make_router(router_name);
  EXPECT_TRUE(router->supports_streaming());
  CircuitSource source(circuit);
  CircuitSink sink(device.num_qubits(),
                   circuit.name() + "@" + device.name());
  StreamRouteOptions options;
  options.chunk_gates = chunk_gates;
  options.spill_gates = spill_gates;
  StreamRouteStats stats =
      router->route_stream(source, device, placement, sink, options);
  return StreamedRoute{std::move(sink).take(), stats};
}

void expect_stream_parity(const std::string& router_name,
                          const std::string& device_name,
                          std::uint64_t seed, std::size_t chunk_gates,
                          std::size_t spill_gates) {
  const std::string label = router_name + "@" + device_name + "#" +
                            std::to_string(seed) + " chunk=" +
                            std::to_string(chunk_gates);
  const Device device = verify::device_by_name(device_name);
  Rng rng(Rng::derive_stream(0x50A17E, seed));
  const Circuit circuit =
      workloads::random_circuit(5, 60, rng, 0.5);
  const Placement placement = GreedyPlacer().place(circuit, device);

  const RoutingResult materialized =
      make_router(router_name)->route(circuit, device, placement);
  const StreamedRoute streamed = route_streamed(
      router_name, circuit, device, placement, chunk_gates, spill_gates);

  EXPECT_EQ(to_openqasm(streamed.circuit), to_openqasm(materialized.circuit))
      << label;
  EXPECT_EQ(streamed.stats.added_swaps, materialized.added_swaps) << label;
  EXPECT_EQ(streamed.stats.added_bridges, materialized.added_bridges)
      << label;
  EXPECT_EQ(streamed.stats.direction_fixes, materialized.direction_fixes)
      << label;
  EXPECT_EQ(streamed.stats.gates_in, circuit.size()) << label;
  EXPECT_EQ(streamed.stats.gates_out, streamed.circuit.size()) << label;
  for (int q = 0; q < circuit.num_qubits(); ++q) {
    EXPECT_EQ(streamed.stats.final.phys_of_program(q),
              materialized.final.phys_of_program(q))
        << label << " program qubit " << q;
  }
}

TEST(StreamRouteParity, MatrixMatchesMaterializedRoute) {
  // chunk=1 forces the smallest legal window at every step (the invariant
  // is exercised gate by gate); chunk=3 staggers chunk and statement
  // boundaries; chunk=4096 >= the circuit degenerates to materialized.
  const std::size_t chunks[] = {1, 3, 4096};
  const char* const routers[] = {"sabre", "bridge"};
  const char* const devices[] = {"ibm_qx4", "ibm_qx5", "surface17"};
  for (const char* router : routers) {
    for (const char* device : devices) {
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        for (const std::size_t chunk : chunks) {
          expect_stream_parity(router, device, seed, chunk, 16);
        }
      }
    }
  }
}

TEST(StreamRouteParity, WideCircuitWithBarriersAndMeasures) {
  // Barriers (including a full-width one) and measures exercise the
  // non-2q scheduling path and the wide-gate successor overflow.
  const Device device = verify::device_by_name("surface17");
  Rng rng(Rng::derive_stream(0xBA44, 7));
  Circuit circuit = workloads::random_circuit(8, 40, rng, 0.5);
  circuit.barrier({0, 1, 2});
  Circuit tail = workloads::random_circuit(8, 40, rng, 0.5);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    circuit.add_unchecked(tail.gate(i));
  }
  circuit.barrier();  // all 8 qubits
  circuit.measure_all();
  const Placement placement = GreedyPlacer().place(circuit, device);
  const RoutingResult materialized =
      SabreRouter().route(circuit, device, placement);
  const StreamedRoute streamed =
      route_streamed("sabre", circuit, device, placement, 2, 8);
  EXPECT_EQ(to_openqasm(streamed.circuit), to_openqasm(materialized.circuit));
}

TEST(StreamRouteParity, QasmSourceEndToEnd) {
  // QASM text -> chunked parse -> streamed route must equal
  // materialized parse -> materialized route.
  const Device device = verify::device_by_name("ibm_qx5");
  const Circuit circuit = stream_test_circuit(9, 5, 80);
  const std::string text = to_openqasm(circuit);
  const Circuit materialized_parse = parse_openqasm(text);
  const Placement placement =
      GreedyPlacer().place(materialized_parse, device);
  const RoutingResult materialized =
      SabreRouter().route(materialized_parse, device, placement);

  std::istringstream in(text);
  QasmStreamSource source(in);
  CircuitSink sink(device.num_qubits(), "streamed");
  StreamRouteOptions options;
  options.chunk_gates = 5;
  options.spill_gates = 32;
  SabreRouter router;
  (void)router.route_stream(source, device, placement, sink, options);
  EXPECT_EQ(to_openqasm(sink.circuit()), to_openqasm(materialized.circuit));
}

TEST(StreamRoute, CommutationModeRefusesToStream) {
  SabreRouter::Options options;
  options.use_commutation = true;
  SabreRouter router(options);
  EXPECT_FALSE(router.supports_streaming());
  const Device device = verify::device_by_name("ibm_qx4");
  const Circuit circuit = stream_test_circuit(1);
  CircuitSource source(circuit);
  CircuitSink sink(device.num_qubits(), "out");
  EXPECT_THROW(router.route_stream(source, device,
                                   GreedyPlacer().place(circuit, device),
                                   sink, StreamRouteOptions{}),
               MappingError);
}

TEST(StreamRoute, RejectsZeroOperandGates) {
  const Device device = verify::device_by_name("ibm_qx4");
  Circuit circuit(2);
  circuit.h(0);
  Gate empty_barrier;
  empty_barrier.kind = GateKind::Barrier;
  circuit.add_unchecked(std::move(empty_barrier));
  CircuitSource source(circuit);
  CircuitSink sink(device.num_qubits(), "out");
  SabreRouter router;
  EXPECT_THROW(router.route_stream(source, device,
                                   GreedyPlacer().place(circuit, device),
                                   sink, StreamRouteOptions{}),
               MappingError);
}

TEST(StreamRoute, RejectsWideNonBarrierGates) {
  const Device device = verify::device_by_name("surface17");
  Circuit circuit(3);
  circuit.ccx(0, 1, 2);
  CircuitSource source(circuit);
  CircuitSink sink(device.num_qubits(), "out");
  SabreRouter router;
  EXPECT_THROW(router.route_stream(source, device,
                                   GreedyPlacer().place(circuit, device),
                                   sink, StreamRouteOptions{}),
               MappingError);
}

TEST(StreamRoute, WindowPeakStaysBoundedOnLongCircuits) {
  // 20x the gates must not mean 20x the window: the resident high-water
  // mark is a function of the circuit's qubit-reuse distance, not its
  // length. Both runs are long enough to cross the retire threshold
  // (shorter circuits simply stay resident whole — that IS the window).
  const Device device = verify::device_by_name("ibm_qx5");
  StreamRouteOptions options;
  options.chunk_gates = 64;
  options.spill_gates = 256;
  std::size_t peak_short = 0;
  std::size_t peak_long = 0;
  for (const int repeats : {50, 1000}) {
    Circuit block = workloads::qft(8, /*with_swaps=*/false);
    Circuit circuit(8, "repeated_qft");
    for (int r = 0; r < repeats; ++r) {
      for (std::size_t i = 0; i < block.size(); ++i) {
        circuit.add_unchecked(block.gate(i));
      }
    }
    CircuitSource source(circuit);
    CountingSink sink;
    SabreRouter router;
    const StreamRouteStats stats = router.route_stream(
        source, device, GreedyPlacer().place(circuit, device), sink,
        options);
    EXPECT_EQ(stats.gates_in, circuit.size());
    (repeats == 50 ? peak_short : peak_long) = stats.window_peak_gates;
  }
  EXPECT_LE(peak_long, 2 * peak_short)
      << "window must not scale with circuit length";
}

// --- Thread handoff: the TSan targets ---

TEST(StreamThreads, PipeHandsOffBetweenThreads) {
  const Circuit circuit = stream_test_circuit(5, 6, 500);
  GatePipe pipe(circuit.num_qubits(), circuit.name(),
                /*capacity_gates=*/64, circuit.num_cbits());
  std::thread producer([&] {
    CircuitSource source(circuit);
    std::vector<Gate> chunk;
    while (source.pull(chunk, 17) > 0) {
      pipe.sink().put_chunk(chunk);
      chunk.clear();
    }
    pipe.sink().flush();
  });
  CircuitSink sink(circuit.num_qubits(), circuit.name());
  std::vector<Gate> chunk;
  while (pipe.source().pull(chunk, 23) > 0) {
    sink.put_chunk(chunk);
    chunk.clear();
  }
  producer.join();
  EXPECT_EQ(to_openqasm(sink.circuit()), to_openqasm(circuit));
}

TEST(StreamThreads, PipedRouteMatchesMaterialized) {
  // Producer thread feeds the pipe; the router consumes it on this
  // thread: the chunked reader/router handoff under real concurrency.
  const Device device = verify::device_by_name("ibm_qx5");
  const Circuit circuit = stream_test_circuit(6, 5, 300);
  const Placement placement = GreedyPlacer().place(circuit, device);
  const RoutingResult materialized =
      SabreRouter().route(circuit, device, placement);

  GatePipe pipe(circuit.num_qubits(), circuit.name(), /*capacity_gates=*/32,
                circuit.num_cbits());
  std::thread producer([&] {
    CircuitSource source(circuit);
    std::vector<Gate> chunk;
    while (source.pull(chunk, 11) > 0) {
      pipe.sink().put_chunk(chunk);
      chunk.clear();
    }
    pipe.sink().flush();
  });
  CircuitSink sink(device.num_qubits(), "piped");
  StreamRouteOptions options;
  options.chunk_gates = 16;
  options.spill_gates = 64;
  SabreRouter router;
  (void)router.route_stream(pipe.source(), device, placement, sink, options);
  producer.join();
  EXPECT_EQ(to_openqasm(sink.circuit()), to_openqasm(materialized.circuit));
}

std::vector<std::string> stream_route_digests(int num_threads) {
  const char* const routers[] = {"sabre", "bridge"};
  constexpr int kTasks = 12;
  std::vector<std::string> digests(kTasks);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([t, num_threads, &routers, &digests] {
      for (int task = t; task < kTasks; task += num_threads) {
        const Device device = verify::device_by_name("ibm_qx5");
        Rng rng(Rng::derive_stream(
            0x50A17E, static_cast<std::uint64_t>(task % 3) + 1));
        const Circuit circuit =
            workloads::random_circuit(5, 60, rng, 0.5);
        const Placement placement =
            GreedyPlacer().place(circuit, device);
        CircuitSource source(circuit);
        CircuitSink sink(device.num_qubits(), "out");
        StreamRouteOptions options;
        options.chunk_gates = 8;
        options.spill_gates = 32;
        const StreamRouteStats stats =
            make_router(routers[task % 2])
                ->route_stream(source, device, placement, sink, options);
        digests[static_cast<std::size_t>(task)] =
            content_digest(to_openqasm(sink.circuit()) + "#" +
                           std::to_string(stats.added_swaps) + "#" +
                           std::to_string(stats.added_bridges));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  return digests;
}

TEST(StreamThreads, RouteDigestsIdenticalAcross1_2_8Threads) {
  const std::vector<std::string> serial = stream_route_digests(1);
  EXPECT_EQ(stream_route_digests(2), serial);
  EXPECT_EQ(stream_route_digests(8), serial);
}

// --- Chunk-wise decompose: StreamingLowerer vs lower_to_device ---

TEST(StreamPass, StreamingLowererMatchesBatchAcrossChunks) {
  for (const char* device_name : {"ibm_qx4", "ibm_qx5"}) {
    const Device device = verify::device_by_name(device_name);
    for (const bool keep_swaps : {false, true}) {
      const Circuit circuit = stream_test_circuit(11, 5, 120);
      const Circuit batch = lower_to_device(circuit, device, keep_swaps);
      for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                      std::size_t{64}, std::size_t{1000}}) {
        StreamingLowerer lowerer(device, circuit.num_qubits(), keep_swaps);
        Circuit out(circuit.num_qubits(), circuit.name());
        std::vector<Gate> gates;
        for (std::size_t i = 0; i < circuit.size(); i += chunk) {
          gates.clear();
          for (std::size_t j = i; j < std::min(i + chunk, circuit.size());
               ++j) {
            gates.push_back(circuit.gate(j));
          }
          lowerer.lower_chunk(gates, out);
        }
        lowerer.finish(out);
        EXPECT_EQ(to_openqasm(out), to_openqasm(batch))
            << device_name << " keep_swaps=" << keep_swaps
            << " chunk=" << chunk;
      }
    }
  }
}

// --- Pass-layer streaming: PassManager::run_stream ---

PipelineSpec streamed_spec(const std::string& router, bool token_swap,
                           bool tail) {
  PipelineSpec spec;
  spec.append("decompose");
  Json placer_options;
  placer_options["algorithm"] = Json(std::string("identity"));
  spec.append("placer", std::move(placer_options));
  Json router_options;
  router_options["algorithm"] = Json(std::string(router));
  spec.append("router", std::move(router_options));
  if (token_swap) spec.append("token_swap_finisher");
  if (tail) {
    spec.append("postroute");
    spec.append("schedule");
  }
  return spec;
}

// Fully out-of-core path: identity placer, streamed decompose + route (+
// token-swap cleanup), no materialized tail. The sink's gate stream and
// every scalar the result carries must match the materialized pipeline.
TEST(StreamPass, FullyStreamedMatchesMaterialized) {
  const Device device = verify::device_by_name("ibm_qx5");
  for (const char* router : {"sabre", "bridge"}) {
    for (const bool token_swap : {false, true}) {
      const PassManager manager(streamed_spec(router, token_swap, false));
      const PipelineRuntime runtime;
      const Circuit circuit = stream_test_circuit(9);
      const CompilationResult materialized =
          manager.run(circuit, device, runtime);
      for (const std::size_t chunk :
           {std::size_t{7}, std::size_t{64}, std::size_t{4096}}) {
        const std::string label = std::string(router) +
                                  " token_swap=" + std::to_string(token_swap) +
                                  " chunk=" + std::to_string(chunk);
        CircuitSource source(circuit);
        CircuitSink sink(device.num_qubits(),
                         circuit.name() + "@" + device.name());
        StreamPipelineOptions options;
        options.chunk_gates = chunk;
        options.spill_gates = chunk;
        const StreamReport report =
            manager.run_stream(source, device, sink, runtime, options);
        EXPECT_FALSE(report.stream.materialized_input) << label;
        EXPECT_TRUE(report.stream.streamed_route) << label;
        EXPECT_TRUE(report.stream.materialized_passes.empty()) << label;
        EXPECT_EQ(report.stream.gates_in, circuit.size()) << label;
        const Circuit streamed = std::move(sink).take();
        EXPECT_EQ(report.stream.gates_out, streamed.size()) << label;
        EXPECT_EQ(to_openqasm(streamed),
                  to_openqasm(materialized.routing.circuit))
            << label;
        EXPECT_EQ(report.result.baseline_cycles, materialized.baseline_cycles)
            << label;
        EXPECT_EQ(report.result.routing.added_swaps,
                  materialized.routing.added_swaps)
            << label;
        EXPECT_EQ(report.result.routing.added_bridges,
                  materialized.routing.added_bridges)
            << label;
        for (int q = 0; q < circuit.num_qubits(); ++q) {
          EXPECT_EQ(report.result.routing.final.phys_of_program(q),
                    materialized.routing.final.phys_of_program(q))
              << label << " program qubit " << q;
        }
      }
    }
  }
}

// Streamed head + materialized tail: postroute/schedule collect the routed
// stream, and the sink receives the final circuit.
TEST(StreamPass, PostrouteTailMatchesMaterialized) {
  const Device device = verify::device_by_name("ibm_qx5");
  const PassManager manager(streamed_spec("sabre", true, true));
  const PipelineRuntime runtime;
  const Circuit circuit = stream_test_circuit(12);
  const CompilationResult materialized = manager.run(circuit, device, runtime);
  CircuitSource source(circuit);
  CircuitSink sink(device.num_qubits(), circuit.name() + "@" + device.name());
  const StreamReport report =
      manager.run_stream(source, device, sink, runtime);
  EXPECT_FALSE(report.stream.materialized_input);
  EXPECT_TRUE(report.stream.streamed_route);
  EXPECT_EQ(report.stream.materialized_passes,
            (std::vector<std::string>{"postroute", "schedule"}));
  EXPECT_EQ(to_openqasm(std::move(sink).take()),
            to_openqasm(materialized.final_circuit));
  EXPECT_EQ(report.result.scheduled_cycles, materialized.scheduled_cycles);
  EXPECT_EQ(report.result.baseline_cycles, materialized.baseline_cycles);
  EXPECT_EQ(report.result.final_metrics.two_qubit_gates,
            materialized.final_metrics.two_qubit_gates);
}

// The golden fingerprint matrix (tests/golden/route_ir_fingerprints.txt)
// pins run_stream against the pre-refactor Compiler byte-for-byte: with a
// materialized head (annealing placer) the streamed route + materialized
// tail must reproduce the exact CompilationResult fingerprint. Routers
// that cannot stream ("sabre+commute") take the full fallback and must
// also match.
std::map<std::string, std::string> load_stream_golden() {
  std::map<std::string, std::string> out;
  std::ifstream in(std::string(QMAP_GOLDEN_DIR) + "/route_ir_fingerprints.txt");
  std::string id;
  std::string digest;
  while (in >> id >> digest) out[id] = digest;
  return out;
}

std::string stream_golden_id(const std::string& router,
                             const std::string& device, std::uint64_t seed) {
  std::string id = router + "@" + device + "#" + std::to_string(seed);
  for (char& c : id) {
    if (c == '+') c = 'P';
  }
  return id;
}

TEST(StreamPass, FingerprintMatchesGoldenMatrix) {
  const std::map<std::string, std::string> golden = load_stream_golden();
  ASSERT_FALSE(golden.empty());
  for (const char* router : {"sabre", "bridge", "sabre+commute"}) {
    for (const char* device_name : {"ibm_qx4", "ibm_qx5", "surface17"}) {
      const Device device = verify::device_by_name(device_name);
      for (const std::uint64_t seed : {1, 2, 3}) {
        const std::string id = stream_golden_id(router, device_name, seed);
        const PassManager manager(PipelineSpec::standard("annealing", router));
        PipelineRuntime runtime;
        runtime.seed = seed;
        Rng rng(Rng::derive_stream(0x50A17E, seed));
        const Circuit circuit = workloads::random_circuit(5, 60, rng, 0.5);
        CircuitSource source(circuit);
        CountingSink sink;
        const StreamReport report =
            manager.run_stream(source, device, sink, runtime);
        const auto it = golden.find(id);
        ASSERT_NE(it, golden.end()) << id;
        EXPECT_EQ(content_digest(report.result.fingerprint()), it->second)
            << id << ": run_stream drifted from the materialized pipeline";
        EXPECT_TRUE(report.stream.materialized_input) << id;
        const bool streams = std::string(router) != "sabre+commute";
        EXPECT_EQ(report.stream.streamed_route, streams) << id;
        EXPECT_EQ(sink.total_gates(), report.stream.gates_out) << id;
      }
    }
  }
}

// Non-standard pipeline shapes (here: a repeated pass) take the full
// materialized fallback and still deliver the product to the sink.
TEST(StreamPass, NonStandardShapeFallsBackToMaterialized) {
  const Device device = verify::device_by_name("ibm_qx5");
  PipelineSpec spec;
  spec.append("decompose");
  spec.append("placer");
  spec.append("placer");
  spec.append("router");
  const PassManager manager(spec);
  const PipelineRuntime runtime;
  const Circuit circuit = stream_test_circuit(13);
  const CompilationResult materialized = manager.run(circuit, device, runtime);
  CircuitSource source(circuit);
  CircuitSink sink(device.num_qubits(), circuit.name() + "@" + device.name());
  const StreamReport report =
      manager.run_stream(source, device, sink, runtime);
  EXPECT_TRUE(report.stream.materialized_input);
  EXPECT_FALSE(report.stream.streamed_route);
  EXPECT_EQ(report.stream.materialized_passes,
            (std::vector<std::string>{"decompose", "placer", "placer",
                                      "router"}));
  EXPECT_EQ(to_openqasm(std::move(sink).take()),
            to_openqasm(materialized.routing.circuit));
}

// A router without a placer must fail with the same error the materialized
// pipeline raises.
TEST(StreamPass, RouterWithoutPlacerThrows) {
  const Device device = verify::device_by_name("ibm_qx4");
  PipelineSpec spec;
  spec.append("decompose");
  spec.append("router");
  const PassManager manager(spec);
  const PipelineRuntime runtime;
  const Circuit circuit = stream_test_circuit(14);
  CircuitSource source(circuit);
  CountingSink sink;
  try {
    (void)manager.run_stream(source, device, sink, runtime);
    FAIL() << "expected MappingError";
  } catch (const MappingError& error) {
    EXPECT_NE(std::string(error.what()).find("needs an initial placement"),
              std::string::npos);
  }
}

// A million-gate-shaped workload (repeated blocks) streams end-to-end with
// a bounded window: nothing materialized, window peak far below the
// stream length.
TEST(StreamPass, RepeatedBlockWorkloadStreamsOutOfCore) {
  const Device device = verify::device_by_name("ibm_qx5");
  workloads::RepeatedBlockSource source = workloads::qft_stream(8, 20000);
  const std::size_t total = source.total_gates();
  ASSERT_GE(total, 20000u);
  const PassManager manager(streamed_spec("sabre", true, false));
  const PipelineRuntime runtime;
  CountingSink sink;
  StreamPipelineOptions options;
  options.chunk_gates = 512;
  options.spill_gates = 512;
  const StreamReport report =
      manager.run_stream(source, device, sink, runtime, options);
  EXPECT_EQ(report.stream.gates_in, total);
  EXPECT_FALSE(report.stream.materialized_input);
  EXPECT_TRUE(report.stream.streamed_route);
  EXPECT_TRUE(report.stream.materialized_passes.empty());
  EXPECT_EQ(report.stream.gates_out, sink.total_gates());
  EXPECT_GT(sink.total_gates(), total / 2);
  EXPECT_GT(report.stream.window_peak_gates, 0u);
  EXPECT_LT(report.stream.window_peak_gates, total / 4);
}

// --- Allocation audit: the token-swap finisher splices, never copies ---

std::size_t token_swap_finisher_allocations(std::size_t prefix_gates) {
  const Device device = verify::device_by_name("ibm_qx5");
  Circuit routed(device.num_qubits(), "tsf-alloc");
  for (std::size_t i = 0; i < prefix_gates; ++i) {
    const int a = static_cast<int>(i % 4);
    routed.cx(a, a + 1);
  }
  for (int q = 0; q < 4; ++q) routed.measure(q, q);
  const Circuit input(device.num_qubits(), "tsf-alloc-input");
  CompileContext ctx(input, device, PipelineRuntime{});
  ctx.placed = true;
  ctx.routed = true;
  ctx.result.routing.circuit = std::move(routed);
  ctx.result.routing.initial =
      Placement::identity(device.num_qubits(), device.num_qubits());
  ctx.result.routing.final = ctx.result.routing.initial;
  ctx.result.routing.final.apply_swap(0, 1);
  ctx.result.routing.final.apply_swap(5, 6);
  TokenSwapFinisherPass pass;
  const std::size_t before =
      g_allocation_count.load(std::memory_order_relaxed);
  pass.run(ctx);
  return g_allocation_count.load(std::memory_order_relaxed) - before;
}

TEST(StreamAlloc, TokenSwapFinisherAllocationsIndependentOfPrefix) {
  // Warm up any lazy one-time initialization (device tables, artifacts).
  (void)token_swap_finisher_allocations(16);
  const std::size_t small = token_swap_finisher_allocations(128);
  const std::size_t large = token_swap_finisher_allocations(64 * 1024);
  EXPECT_GT(small, 0u);
  // The pre-splice pass copied the prefix gate-by-gate (>= 2 allocations
  // per gate); the spliced pass costs O(cleanup swaps + suffix).
  EXPECT_LE(large, small + 16);
}

}  // namespace
}  // namespace qmap
