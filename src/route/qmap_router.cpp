#include "route/qmap_router.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/error.hpp"
#include "ir/dag.hpp"

namespace qmap {

RoutingResult QmapRouter::route(const Circuit& circuit, const Device& device,
                                const Placement& initial) {
  const auto start_time = std::chrono::steady_clock::now();
  check_routable(circuit, device);
  const CouplingGraph& coupling = device.coupling();
  DependencyDag dag(circuit);
  RoutingEmitter emitter(device, initial,
                         circuit.name() + "@" + device.name());

  // Look-back state: when each physical qubit becomes free, in cycles.
  std::vector<double> busy_until(
      static_cast<std::size_t>(device.num_qubits()), 0.0);
  const double swap_cycles =
      device.cycles_for(make_gate(GateKind::SWAP, {0, 1}));

  const auto occupy = [&](const std::vector<int>& phys_qubits,
                          double cycles) {
    double start = 0.0;
    for (const int p : phys_qubits) {
      start = std::max(start, busy_until[static_cast<std::size_t>(p)]);
    }
    for (const int p : phys_qubits) {
      busy_until[static_cast<std::size_t>(p)] = start + cycles;
    }
  };

  const auto executable = [&](int node) {
    const Gate& gate = circuit.gate(static_cast<std::size_t>(node));
    if (!gate.is_two_qubit()) return true;
    return coupling.connected(
        emitter.placement().phys_of_program(gate.qubits[0]),
        emitter.placement().phys_of_program(gate.qubits[1]));
  };

  const auto flush_executable = [&] {
    bool progressed = true;
    bool any = false;
    while (progressed) {
      progressed = false;
      const std::vector<int> ready = dag.ready();
      for (const int node : ready) {
        if (!executable(node)) continue;
        const Gate& gate = circuit.gate(static_cast<std::size_t>(node));
        std::vector<int> phys;
        phys.reserve(gate.qubits.size());
        for (const int q : gate.qubits) {
          phys.push_back(emitter.placement().phys_of_program(q));
        }
        emitter.emit_program_gate(gate);
        occupy(phys, device.cycles_for(gate));
        dag.mark_scheduled(node);
        progressed = true;
        any = true;
      }
    }
    return any;
  };

  const auto gate_distance = [&](int node, const Placement& placement) {
    const Gate& gate = circuit.gate(static_cast<std::size_t>(node));
    return phys_distance(device, placement.phys_of_program(gate.qubits[0]),
                         placement.phys_of_program(gate.qubits[1]));
  };

  int stall_guard = 0;
  const int stall_limit = 10 * std::max(1, device.num_qubits());
  std::uint64_t iterations = 0;
  std::uint64_t rescues = 0;
  while (!dag.all_scheduled()) {
    check_cancelled();
    ++iterations;
    if (flush_executable()) {
      stall_guard = 0;
      continue;
    }
    const std::vector<int> front = dag.ready_two_qubit();
    if (front.empty()) {
      throw MappingError("qmap router: stalled without ready two-qubit gate");
    }
    std::vector<int> extended;
    for (std::size_t i = 0;
         i < circuit.size() &&
         extended.size() < static_cast<std::size_t>(options_.extended_window);
         ++i) {
      const int node = static_cast<int>(i);
      if (dag.color(node) == NodeColor::Scheduled) continue;
      if (std::find(front.begin(), front.end(), node) != front.end()) continue;
      if (circuit.gate(i).is_two_qubit()) extended.push_back(node);
    }

    std::vector<bool> relevant(static_cast<std::size_t>(device.num_qubits()),
                               false);
    for (const int node : front) {
      const Gate& gate = circuit.gate(static_cast<std::size_t>(node));
      for (const int q : gate.qubits) {
        relevant[static_cast<std::size_t>(
            emitter.placement().phys_of_program(q))] = true;
      }
    }

    // Primary: distance improvement over front + lookahead. Secondary
    // (latency look-back): earliest finish time of the SWAP itself.
    double best_primary = std::numeric_limits<double>::infinity();
    double best_finish = std::numeric_limits<double>::infinity();
    int best_a = -1;
    int best_b = -1;
    for (const auto& edge : coupling.edges()) {
      if (!relevant[static_cast<std::size_t>(edge.a)] &&
          !relevant[static_cast<std::size_t>(edge.b)]) {
        continue;
      }
      Placement trial = emitter.placement();
      trial.apply_swap(edge.a, edge.b);
      double primary = 0.0;
      for (const int node : front) primary += gate_distance(node, trial);
      primary /= static_cast<double>(front.size());
      if (!extended.empty()) {
        double ext = 0.0;
        for (const int node : extended) ext += gate_distance(node, trial);
        primary +=
            options_.extended_weight * ext / static_cast<double>(extended.size());
      }
      const double finish =
          std::max(busy_until[static_cast<std::size_t>(edge.a)],
                   busy_until[static_cast<std::size_t>(edge.b)]) +
          swap_cycles;
      if (primary < best_primary - 1e-12 ||
          (std::abs(primary - best_primary) <= 1e-12 &&
           finish < best_finish)) {
        best_primary = primary;
        best_finish = finish;
        best_a = edge.a;
        best_b = edge.b;
      }
    }
    if (best_a < 0) throw MappingError("qmap router: no candidate SWAP");

    if (++stall_guard > stall_limit) {
      const Gate& gate = circuit.gate(static_cast<std::size_t>(front.front()));
      const int pa = emitter.placement().phys_of_program(gate.qubits[0]);
      const int pb = emitter.placement().phys_of_program(gate.qubits[1]);
      const std::vector<int> path = phys_shortest_path(device, pa, pb);
      for (std::size_t i = 0; i + 2 < path.size(); ++i) {
        emitter.emit_swap(path[i], path[i + 1]);
        occupy({path[i], path[i + 1]}, swap_cycles);
      }
      ++rescues;
      stall_guard = 0;
      continue;
    }

    emitter.emit_swap(best_a, best_b);
    occupy({best_a, best_b}, swap_cycles);
  }

  const double runtime_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_time)
          .count();
  RoutingResult result = std::move(emitter).finish(initial, runtime_ms);
  obs::add(observer(), "qmap_router.routes");
  obs::add(observer(), "qmap_router.iterations", iterations);
  obs::add(observer(), "qmap_router.rescues", rescues);
  obs::observe(observer(), "route.swaps_inserted",
               static_cast<double>(result.added_swaps));
  return result;
}

}  // namespace qmap
