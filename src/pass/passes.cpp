#include "pass/passes.hpp"

#include "decompose/decomposer.hpp"
#include "decompose/peephole.hpp"
#include "obs/obs.hpp"
#include "pass/context.hpp"
#include "pass/registry.hpp"
#include "route/measure_relocation.hpp"
#include "route/token_swap.hpp"
#include "schedule/schedulers.hpp"

namespace qmap {

void DecomposePass::run(CompileContext& ctx) {
  const Circuit& circuit = ctx.input();
  const Device& device = ctx.device();
  // SWAPs stay as routing placeholders in the working copy.
  ctx.result.lowered =
      lower_to_native_ ? lower_to_device(circuit, device, /*keep_swaps=*/true)
                       : circuit;
  // Baseline latency: decomposed, dependency-only schedule (Sec. V).
  const Circuit baseline =
      lower_to_native_ ? lower_to_device(circuit, device, /*keep_swaps=*/false)
                       : circuit;
  ctx.result.baseline_cycles = schedule_asap(baseline, device).total_cycles();
}

PlacePass::PlacePass(std::string algorithm)
    : algorithm_(std::move(algorithm)) {
  // Validate eagerly so a bad pipeline spec fails at build time, not after
  // earlier passes already ran.
  (void)make_placer(algorithm_);
}

void PlacePass::run(CompileContext& ctx) {
  std::unique_ptr<Placer> placer = make_placer(algorithm_, ctx.seed());
  placer->set_cancel_token(ctx.cancel());
  ctx.placement = placer->place(ctx.result.lowered, ctx.device());
  ctx.placed = true;
}

RoutePass::RoutePass(std::string algorithm)
    : algorithm_(std::move(algorithm)) {
  (void)make_router(algorithm_);
}

void RoutePass::run(CompileContext& ctx) {
  if (!ctx.placed) {
    throw MappingError(
        "pass 'router' needs an initial placement: add a 'placer' pass "
        "earlier in the pipeline");
  }
  std::unique_ptr<Router> router = make_router(algorithm_);
  router->set_cancel_token(ctx.cancel());
  router->set_observer(ctx.obs());
  router->set_artifacts(&ctx.artifacts());
  ctx.result.routing =
      router->route(ctx.result.lowered, ctx.device(), ctx.placement);
  ctx.routed = true;
}

void TokenSwapFinisherPass::run(CompileContext& ctx) {
  if (!ctx.routed) {
    throw MappingError(
        "pass 'token_swap_finisher' needs a routing result: add a 'router' "
        "pass earlier in the pipeline");
  }
  if (ctx.postrouted) {
    throw MappingError(
        "pass 'token_swap_finisher' must run before 'postroute': its cleanup "
        "SWAPs are placeholders the postroute pass expands");
  }
  RoutingResult& routing = ctx.result.routing;
  TokenSwapCleanup cleanup = plan_token_swap_cleanup(
      routing.final, routing.initial, ctx.device(), &ctx.artifacts());
  obs::add(ctx.obs(), "router.bridge.token_swap_rounds", cleanup.rounds);
  obs::add(ctx.obs(), "router.bridge.token_swap_swaps",
           cleanup.total_swaps());
  if (cleanup.swaps.empty()) return;

  // The cleanup SWAPs are unitaries, and relocate_measurements (postroute)
  // rejects unitaries after a deferred measurement — so splice the rounds
  // in *before* the trailing measurement/barrier suffix and route those
  // terminal operands through the cleanup permutation. The gate list is
  // taken, edited in place, and put back: the prefix (which dominates) is
  // never copied gate-by-gate.
  std::vector<Gate> gates = routing.circuit.take_gates();
  std::size_t split = gates.size();
  while (split > 0) {
    const GateKind kind = gates[split - 1].kind;
    if (kind != GateKind::Measure && kind != GateKind::Barrier) break;
    --split;
  }
  for (std::size_t i = split; i < gates.size(); ++i) {
    for (int& q : gates[i].qubits) {
      q = cleanup.position_of[static_cast<std::size_t>(q)];
    }
  }
  routing.added_swaps += cleanup.total_swaps();
  gates.insert(gates.begin() + static_cast<std::ptrdiff_t>(split),
               std::make_move_iterator(cleanup.swaps.begin()),
               std::make_move_iterator(cleanup.swaps.end()));
  routing.circuit.set_gates(std::move(gates));
}

void PostRoutePass::run(CompileContext& ctx) {
  if (!ctx.routed) {
    throw MappingError(
        "pass 'postroute' needs a routing result: add a 'router' pass "
        "earlier in the pipeline");
  }
  const Device& device = ctx.device();
  Circuit relocated =
      relocate_measurements(ctx.result.routing.circuit, device,
                            ctx.result.routing.final, &ctx.artifacts());
  if (peephole_) relocated = peephole_optimize(relocated);
  Circuit final_circuit = expand_swaps(relocated, device);
  final_circuit = fix_cx_directions(final_circuit, device);
  if (peephole_) final_circuit = peephole_optimize(final_circuit);
  if (lower_to_native_) {
    final_circuit = fuse_single_qubit(final_circuit);
    final_circuit = lower_single_qubit(final_circuit, device);
  }
  final_circuit.set_name(ctx.input().name() + "@" + device.name());
  ctx.result.final_circuit = std::move(final_circuit);
  ctx.result.final_metrics = compute_metrics(ctx.result.final_circuit);
  ctx.postrouted = true;
}

void SchedulePass::run(CompileContext& ctx) {
  if (!ctx.postrouted) {
    throw MappingError(
        "pass 'schedule' needs a finalized circuit: add a 'postroute' pass "
        "earlier in the pipeline");
  }
  ctx.result.schedule =
      use_control_constraints_
          ? schedule_for_device(ctx.result.final_circuit, ctx.device(),
                                ctx.obs())
          : schedule_asap(ctx.result.final_circuit, ctx.device());
  ctx.result.scheduled_cycles = ctx.result.schedule.total_cycles();
}

}  // namespace qmap
