// Device model: everything the compiler's "machine description" input
// (right-hand input of Fig. 2 in the paper) contains.
//
// A Device bundles:
//   * the coupling graph (connectivity + CNOT orientation restrictions),
//   * the native gate set (Sec. IV: {U(theta,phi,lambda), CX} for IBM;
//     Sec. V: {Rx, Ry, CZ} for Surface-17),
//   * gate durations discretized into clock cycles,
//   * the classical-control resources of Sec. V: microwave frequency groups
//     (qubits sharing an AWG), measurement feedlines, and the CZ "parking"
//     rule for frequency-adjacent neighbours.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "arch/noise.hpp"
#include "arch/topology.hpp"
#include "ir/gate.hpp"

namespace qmap {

/// Gate durations in device clock cycles.
struct Durations {
  double cycle_ns = 20.0;     // Surface-17 runs a 20 ns cycle (Sec. V)
  int single_qubit_cycles = 1;
  int two_qubit_cycles = 2;   // CZ is a 40 ns flux pulse
  int measure_cycles = 30;    // "measurement takes several cycles" (600 ns)
  int move_cycles = 2;        // shuttle move (quantum-dot devices, Sec. VI-C)
};

class Device {
 public:
  Device() = default;
  Device(std::string name, CouplingGraph coupling);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const CouplingGraph& coupling() const noexcept {
    return coupling_;
  }
  [[nodiscard]] int num_qubits() const noexcept {
    return coupling_.num_qubits();
  }

  // --- Native gate set ---

  /// The device's native two-qubit gate (CX for IBM, CZ for Surface-17).
  [[nodiscard]] GateKind native_two_qubit() const noexcept {
    return native_two_qubit_;
  }
  void set_native_two_qubit(GateKind kind);

  /// Native single-qubit gate kinds. Parameterized kinds admit any angle.
  [[nodiscard]] const std::vector<GateKind>& native_single_qubit() const {
    return native_single_qubit_;
  }
  void set_native_single_qubit(std::vector<GateKind> kinds) {
    native_single_qubit_ = std::move(kinds);
  }

  /// True when `gate` is executable as-is: native kind, and for two-qubit
  /// gates the operand pair/orientation is allowed by the coupling graph.
  /// Measurements and barriers are always accepted.
  [[nodiscard]] bool accepts(const Gate& gate) const;

  /// True when `kind` is in the native set (ignores operand placement).
  [[nodiscard]] bool is_native_kind(GateKind kind) const;

  // --- Durations ---

  [[nodiscard]] const Durations& durations() const noexcept {
    return durations_;
  }
  void set_durations(const Durations& d) { durations_ = d; }
  /// Duration of one gate in cycles (barrier: 0). SWAP costs what its
  /// decomposition into native gates costs on the critical path.
  [[nodiscard]] int cycles_for(const Gate& gate) const;
  [[nodiscard]] double duration_ns(const Gate& gate) const {
    return cycles_for(gate) * durations_.cycle_ns;
  }

  // --- Shuttling (Sec. VI-C, silicon quantum dots) ---

  /// True when the device supports Move operations (relocating a qubit to
  /// an adjacent empty site) as a native alternative to SWAP routing.
  [[nodiscard]] bool supports_shuttling() const noexcept {
    return supports_shuttling_;
  }
  void set_supports_shuttling(bool enabled) {
    supports_shuttling_ = enabled;
  }

  // --- Two-qubit gate parallelism (Sec. VI-C, trapped ions) ---

  /// Maximum number of two-qubit gates that may execute concurrently
  /// (0 = unlimited). Trapped-ion modules pay for their all-to-all
  /// connectivity with serialized two-qubit gates on the shared motional
  /// bus: "this desirable property comes at the price of reduced two-qubit
  /// gate parallelism."
  [[nodiscard]] int max_parallel_two_qubit() const noexcept {
    return max_parallel_two_qubit_;
  }
  void set_max_parallel_two_qubit(int limit);

  // --- Measurement availability (Sec. VI-A) ---

  /// True when `qubit` can be measured directly. Devices where "not all
  /// qubits can be directly measured" require moving the state towards
  /// measurable qubits (see relocate_measurements). Default: all qubits.
  [[nodiscard]] bool measurable(int qubit) const;
  /// Empty = every qubit measurable.
  [[nodiscard]] const std::vector<bool>& measurable_mask() const {
    return measurable_;
  }
  void set_measurable(std::vector<bool> mask);

  // --- Classical-control constraints (Sec. V) ---

  /// Frequency group of each qubit (0-based; -1 = unconstrained). Qubits in
  /// the same group share a microwave generator: in any cycle they may only
  /// run the *same* single-qubit gate.
  [[nodiscard]] const std::vector<int>& frequency_groups() const {
    return frequency_group_;
  }
  void set_frequency_groups(std::vector<int> groups);
  [[nodiscard]] int frequency_group(int qubit) const;

  /// Measurement feedline of each qubit (-1 = dedicated line). Measurements
  /// on one feedline must start in the same cycle or not overlap at all.
  [[nodiscard]] const std::vector<int>& feedlines() const {
    return feedline_;
  }
  void set_feedlines(std::vector<int> lines);
  [[nodiscard]] int feedline(int qubit) const;

  /// Qubits that must be parked (detuned, unusable) while CZ(a, b) runs.
  ///
  /// Model (Sec. V): the higher-frequency qubit h of the pair is lowered to
  /// the frequency of the lower one l; any *other* neighbour of h whose
  /// frequency group equals l's would be dragged into resonance and is
  /// parked for the duration of the CZ. Returns empty when the device has
  /// no frequency groups.
  [[nodiscard]] std::vector<int> parked_qubits(int a, int b) const;

  [[nodiscard]] bool has_control_constraints() const;

  // --- Optional calibration data (Sec. III-B reliability cost function) ---

  [[nodiscard]] bool has_noise() const noexcept {
    return noise_.has_value();
  }
  /// Throws DeviceError when no noise model is attached.
  [[nodiscard]] const NoiseModel& noise() const;
  void set_noise(NoiseModel noise);
  void clear_noise() { noise_.reset(); }

  // --- Optional drawing coordinates (row, column) ---

  void set_coordinates(std::vector<std::pair<double, double>> coords) {
    coordinates_ = std::move(coords);
  }
  [[nodiscard]] const std::vector<std::pair<double, double>>& coordinates()
      const {
    return coordinates_;
  }

  // --- Load diagnostics ---

  /// Non-fatal problems recorded while constructing this device, e.g. a
  /// mistyped optional field in a JSON config that fell back to its
  /// documented default (arch/config.cpp). Empty for built-in devices and
  /// for cleanly loaded configs.
  [[nodiscard]] const std::vector<std::string>& load_warnings() const {
    return load_warnings_;
  }
  void add_load_warning(std::string warning) {
    load_warnings_.push_back(std::move(warning));
  }

  /// Multi-line summary (qubit count, edges, native set, constraints).
  [[nodiscard]] std::string summary() const;

 private:
  std::string name_ = "device";
  CouplingGraph coupling_;
  GateKind native_two_qubit_ = GateKind::CZ;
  std::vector<GateKind> native_single_qubit_;
  bool supports_shuttling_ = false;
  int max_parallel_two_qubit_ = 0;
  std::vector<bool> measurable_;
  Durations durations_;
  std::vector<int> frequency_group_;
  std::vector<int> feedline_;
  std::optional<NoiseModel> noise_;
  std::vector<std::pair<double, double>> coordinates_;
  std::vector<std::string> load_warnings_;
};

}  // namespace qmap
