// Compile-service cache economics, measured:
//
//   1. Cold compile: a full portfolio-ladder run through the service
//      (cache bypassed) — the price every unique request pays once.
//   2. Warm hit: the identical request answered from the sharded result
//      cache — the price every repeat pays.
//   3. Coalesced fan-in: 8 concurrent identical requests answered by one
//      compile (single-flight).
//   4. Negative hit: a cached admission rejection.
//
// The print section verifies the service's two load-bearing claims and
// exits non-zero if either fails, so the bench doubles as an integration
// check:
//   * a warm hit is >= 100x faster than the cold compile it replays;
//   * the warm answer's fingerprint is byte-identical to the cold one.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "bench_util.hpp"
#include "qasm/openqasm.hpp"
#include "service/service.hpp"

namespace {

using namespace qmap;
using namespace qmap::bench;

std::string bench_qasm() { return to_openqasm(workloads::qft(5)); }

service::ServiceRequest bench_request(std::uint64_t seed = 0xC0FFEE) {
  service::ServiceRequest request;
  request.op = "compile";
  request.client = "bench";
  request.device = "surface17";
  request.qasm = bench_qasm();
  request.seed = seed;
  return request;
}

double median_ms(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

void print_figure() {
  paper_note(
      "Sec. VII outlook: mapping sits between every algorithm and every "
      "device, and at service scale the same (circuit, device, pipeline, "
      "seed) tuples recur constantly. A content-addressed cache turns that "
      "repetition into near-free answers — if, and only if, a hit replays "
      "exactly what the cold path would have computed.");

  service::CompileService compile_service;

  // Cold: median over a few genuinely distinct compiles (fresh seeds so
  // none of them can hit the cache).
  std::vector<double> cold_ms;
  std::string cold_fingerprint;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto start = std::chrono::steady_clock::now();
    const service::ServiceResponse response =
        compile_service.handle(bench_request(seed));
    cold_ms.push_back(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count());
    if (response.status != "ok" || response.cache != "miss") {
      std::cerr << "FATAL: cold compile did not run (status="
                << response.status << ", cache=" << response.cache << ")\n";
      std::exit(1);
    }
    if (seed == 1) cold_fingerprint = response.fingerprint;
  }

  // Warm: the seed-1 request again, many times, all hits.
  std::vector<double> warm_ms;
  for (int i = 0; i < 2000; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const service::ServiceResponse response =
        compile_service.handle(bench_request(1));
    warm_ms.push_back(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count());
    if (response.cache != "hit") {
      std::cerr << "FATAL: warm request missed the cache (cache="
                << response.cache << ")\n";
      std::exit(1);
    }
    if (response.fingerprint != cold_fingerprint) {
      std::cerr << "FATAL: warm hit replayed a different fingerprint than "
                   "the cold compile\n";
      std::exit(1);
    }
  }

  const double cold = median_ms(cold_ms);
  const double warm = median_ms(warm_ms);
  const double ratio = warm > 0.0 ? cold / warm : 1e9;

  section("Warm-hit vs cold-compile latency (surface17 / qft5)");
  TextTable table({"path", "median ms", "speedup"});
  table.add_row({"cold compile (portfolio ladder)", TextTable::num(cold, 3),
                 "1x"});
  table.add_row({"warm cache hit", TextTable::num(warm, 6),
                 TextTable::num(ratio, 0) + "x"});
  std::cout << table.str();
  std::cout << "(gate: the warm/cold ratio must be >= 100x, and warm "
               "fingerprints must be byte-identical to cold)\n";

  if (ratio < 100.0) {
    std::cerr << "FATAL: warm hit only " << ratio
              << "x faster than cold compile (need >= 100x)\n";
    std::exit(1);
  }
}

void BM_ServiceColdCompile(benchmark::State& state) {
  service::CompileService compile_service;
  service::ServiceRequest request = bench_request();
  request.no_cache = true;  // every iteration pays the full ladder
  for (auto _ : state) {
    benchmark::DoNotOptimize(compile_service.handle(request));
  }
  state.SetLabel("cache bypass, full portfolio ladder");
}
BENCHMARK(BM_ServiceColdCompile);

void BM_ServiceWarmHit(benchmark::State& state) {
  service::CompileService compile_service;
  const service::ServiceRequest request = bench_request();
  benchmark::DoNotOptimize(compile_service.handle(request));  // warm it
  for (auto _ : state) {
    benchmark::DoNotOptimize(compile_service.handle(request));
  }
  state.SetLabel("content-addressed cache hit");
}
BENCHMARK(BM_ServiceWarmHit);

void BM_ServiceCoalescedFanIn(benchmark::State& state) {
  service::ServiceConfig config;
  config.num_workers = 8;
  service::CompileService compile_service(std::move(config));
  std::uint64_t seed = 1;  // fresh key per iteration: one compile + 7 joins
  for (auto _ : state) {
    std::vector<std::future<service::ServiceResponse>> futures;
    futures.reserve(8);
    for (int i = 0; i < 8; ++i) {
      futures.push_back(compile_service.submit(bench_request(seed)));
    }
    for (auto& future : futures) {
      benchmark::DoNotOptimize(future.get());
    }
    ++seed;
  }
  state.SetLabel("8 identical concurrent requests, single-flight");
}
BENCHMARK(BM_ServiceCoalescedFanIn);

void BM_ServiceShedDecision(benchmark::State& state) {
  // The overload admission check runs on every submit, shed or not, so it
  // must be invisible next to a compile: the snapshot gates it at < 1% of
  // the cold-compile latency (in practice it is ~5 orders cheaper — three
  // uncontended mutex reads and a multiply).
  service::CompileService compile_service;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compile_service.assess_load(5.0));
  }
  state.SetLabel("overload admission verdict (deadline-aware)");
}
BENCHMARK(BM_ServiceShedDecision);

void BM_ServiceDrain(benchmark::State& state) {
  // Graceful-drain latency with compiles in flight: the time a SIGTERM'd
  // daemon needs before it can exit with every accepted request answered.
  std::uint64_t seed = 1;
  for (auto _ : state) {
    state.PauseTiming();
    service::ServiceConfig config;
    config.num_workers = 2;
    auto compile_service =
        std::make_unique<service::CompileService>(std::move(config));
    std::vector<std::future<service::ServiceResponse>> futures;
    for (int i = 0; i < 2; ++i) {
      futures.push_back(compile_service->submit(bench_request(seed++)));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(compile_service->drain(60000.0));
    state.PauseTiming();
    for (auto& future : futures) future.get();
    compile_service.reset();
    state.ResumeTiming();
  }
  state.SetLabel("drain with 2 cold compiles in flight");
}
BENCHMARK(BM_ServiceDrain)->Iterations(3)->Unit(benchmark::kMillisecond);

void BM_ServiceNegativeHit(benchmark::State& state) {
  service::CompileService compile_service;
  service::ServiceRequest request = bench_request();
  request.qasm = to_openqasm(workloads::ghz(40));  // wider than surface17
  benchmark::DoNotOptimize(compile_service.handle(request));  // cache it
  for (auto _ : state) {
    benchmark::DoNotOptimize(compile_service.handle(request));
  }
  state.SetLabel("cached admission rejection");
}
BENCHMARK(BM_ServiceNegativeHit);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
