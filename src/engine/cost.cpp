#include "engine/cost.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "noise/estimator.hpp"

namespace qmap {

namespace {

double neg_log_esp(const CompilationResult& result, const Device& device) {
  if (!device.has_noise()) return 0.0;
  // The schedule-aware ESP also charges idle-time decoherence; fall back
  // to the gate-error-only estimate when the scheduler was disabled.
  const double esp =
      result.schedule.size() > 0
          ? estimated_success_probability(result.schedule, device)
          : estimated_success_probability(result.final_circuit, device);
  if (esp <= 0.0) return 1e9;  // numerically dead circuit: worst cost
  return -std::log(esp);
}

}  // namespace

CostFunction make_cost_function(const CostWeights& weights) {
  return [weights](const CompilationResult& result,
                   const Device& device) -> double {
    double cost = 0.0;
    if (weights.two_qubit_gates != 0.0) {
      cost += weights.two_qubit_gates *
              static_cast<double>(result.final_metrics.two_qubit_gates);
    }
    if (weights.depth != 0.0) {
      cost += weights.depth * static_cast<double>(result.final_metrics.depth);
    }
    if (weights.scheduled_cycles != 0.0) {
      cost += weights.scheduled_cycles *
              static_cast<double>(result.scheduled_cycles);
    }
    if (weights.neg_log_esp != 0.0) {
      cost += weights.neg_log_esp * neg_log_esp(result, device);
    }
    return cost;
  };
}

const std::vector<std::string>& known_cost_functions() {
  static const std::vector<std::string> names = {"gates", "depth", "cycles",
                                                 "esp", "balanced"};
  return names;
}

CostFunction make_cost_function(const std::string& name) {
  CostWeights weights;
  weights.two_qubit_gates = 0.0;
  if (name == "gates") {
    weights.two_qubit_gates = 1.0;
  } else if (name == "depth") {
    weights.depth = 1.0;
  } else if (name == "cycles") {
    weights.scheduled_cycles = 1.0;
    weights.depth = 1e-3;  // tie-break unscheduled runs by depth
  } else if (name == "esp") {
    weights.neg_log_esp = 1.0;
    weights.two_qubit_gates = 1e-3;  // tie-break noiseless devices by gates
  } else if (name == "balanced") {
    weights.two_qubit_gates = 1.0;
    weights.depth = 0.1;
    weights.scheduled_cycles = 0.01;
  } else {
    throw MappingError("unknown cost function: '" + name + "' (valid: " +
                       join(known_cost_functions(), ", ") + ")");
  }
  return make_cost_function(weights);
}

}  // namespace qmap
