// GatePipe: a bounded buffer connecting a producer thread's GateSink to
// a consumer thread's GateSource.
//
// This is the chunked reader/router handoff for true out-of-core runs:
// one thread parses OpenQASM (or generates a workload) and pushes chunks
// into the pipe while another thread routes them, so parse latency and
// route latency overlap and neither side ever holds more than the pipe
// capacity plus its own working set. Single producer, single consumer.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "ir/gate_stream.hpp"

namespace qmap {

class GatePipe {
 public:
  /// Register metadata is fixed at construction (the consumer needs it
  /// before the first chunk arrives). `capacity_gates` bounds how many
  /// gates may sit in the pipe before the producer blocks.
  GatePipe(int num_qubits, std::string name, std::size_t capacity_gates = 16384,
           int num_cbits = 0);

  [[nodiscard]] GateSink& sink() noexcept { return sink_; }
  [[nodiscard]] GateSource& source() noexcept { return source_; }

  /// Producer side: no more gates will be pushed. Unblocks a waiting
  /// consumer. Also called by sink().flush().
  void close();

 private:
  class PipeSink final : public GateSink {
   public:
    explicit PipeSink(GatePipe& pipe) : pipe_(&pipe) {}
    void put(Gate gate) override;
    void put_chunk(std::vector<Gate>& gates) override;
    void flush() override;

   private:
    GatePipe* pipe_;
    std::vector<Gate> pending_;
  };

  class PipeSource final : public GateSource {
   public:
    explicit PipeSource(GatePipe& pipe) : pipe_(&pipe) {}
    [[nodiscard]] int num_qubits() const override {
      return pipe_->num_qubits_;
    }
    [[nodiscard]] int num_cbits() const override { return pipe_->num_cbits_; }
    [[nodiscard]] std::string name() const override { return pipe_->name_; }
    std::size_t pull(std::vector<Gate>& out, std::size_t max_gates) override;

   private:
    GatePipe* pipe_;
    std::vector<Gate> chunk_;    // current partially-consumed chunk
    std::size_t chunk_pos_ = 0;  // next gate to hand out from chunk_
  };

  void push_chunk(std::vector<Gate> chunk);
  /// Blocks until a chunk is available or the pipe is closed; returns an
  /// empty vector on closed-and-drained.
  std::vector<Gate> pop_chunk();

  int num_qubits_;
  int num_cbits_;
  std::string name_;
  std::size_t capacity_gates_;

  std::mutex mutex_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<std::vector<Gate>> chunks_;
  std::size_t buffered_gates_ = 0;
  bool closed_ = false;

  PipeSink sink_{*this};
  PipeSource source_{*this};
};

}  // namespace qmap
