file(REMOVE_RECURSE
  "libqmap_explore.a"
)
