#!/usr/bin/env bash
# Lint: every obs metric name recorded by the compile service
# (src/service/, string literals starting with "service.") must appear in
# DESIGN.md's service metrics table, so the instrumentation and the
# documentation cannot drift apart.
#
# Usage: scripts/check_service_metrics.sh
set -euo pipefail
cd "$(dirname "$0")/.."

DESIGN=DESIGN.md

# Pull every "service.*" string literal out of the service sources. The
# per-client histogram is recorded under a computed name, so its code
# literal is the prefix "service.client." — the table documents it as
# `service.client.<id>.latency_ms`, which contains that prefix.
names=$(grep -rho '"service\.[a-z_.]*' src/service/*.cpp src/service/*.hpp \
  | tr -d '"' | sort -u)

if [ -z "${names}" ]; then
  echo "check_service_metrics: no service.* metric literals found" >&2
  exit 1
fi

missing=0
for name in ${names}; do
  if ! grep -Fq "${name}" "${DESIGN}"; then
    echo "check_service_metrics: metric '${name}' is recorded in" \
         "src/service/ but missing from ${DESIGN}" >&2
    missing=1
  fi
done

if [ "${missing}" -ne 0 ]; then
  exit 1
fi

# The service.* transport fault points (registered in the resilience fault
# registry, delivered by the ChaosTransport) must be documented too —
# their names allow '-', so they need their own character class.
faults=$(grep -rho '"service\.[a-z-]*' src/resilience/fault_injector.cpp \
  | tr -d '"' | sort -u)
for name in ${faults}; do
  if ! grep -Fq "${name}" "${DESIGN}"; then
    echo "check_service_metrics: fault point '${name}' is registered in" \
         "src/resilience/fault_injector.cpp but missing from ${DESIGN}" >&2
    missing=1
  fi
done
if [ "${missing}" -ne 0 ]; then
  exit 1
fi

echo "check_service_metrics: src/service/ and ${DESIGN} agree" \
     "($(echo "${names}" | wc -w) metric names," \
     "$(echo "${faults}" | wc -w) fault points)"
