#include "verify/reproducer.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "arch/builtin.hpp"
#include "common/error.hpp"
#include "qasm/openqasm.hpp"

namespace qmap::verify {

namespace {

/// Parses the integer suffix of "prefix<n>" names; -1 when malformed.
int suffix_int(const std::string& name, const std::string& prefix) {
  if (name.size() <= prefix.size() || name.rfind(prefix, 0) != 0) return -1;
  const std::string digits = name.substr(prefix.size());
  if (digits.find_first_not_of("0123456789") != std::string::npos) return -1;
  return std::atoi(digits.c_str());
}

/// Parses "prefix<r>x<c>" names; false when malformed.
bool suffix_grid(const std::string& name, const std::string& prefix, int* rows,
                 int* cols) {
  if (name.rfind(prefix, 0) != 0) return false;
  const std::string tail = name.substr(prefix.size());
  const std::size_t x = tail.find('x');
  if (x == std::string::npos) return false;
  const std::string r = tail.substr(0, x);
  const std::string c = tail.substr(x + 1);
  if (r.empty() || c.empty() ||
      r.find_first_not_of("0123456789") != std::string::npos ||
      c.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *rows = std::atoi(r.c_str());
  *cols = std::atoi(c.c_str());
  return true;
}

}  // namespace

Device device_by_name(const std::string& name) {
  if (name == "ibm_qx4") return devices::ibm_qx4();
  if (name == "ibm_qx5") return devices::ibm_qx5();
  if (name == "surface17") return devices::surface17();
  if (name == "surface7") return devices::surface7();
  int rows = 0;
  int cols = 0;
  if (int n = suffix_int(name, "linear"); n > 0) return devices::linear(n);
  if (int n = suffix_int(name, "all_to_all"); n > 0) {
    return devices::all_to_all(n);
  }
  if (int n = suffix_int(name, "ion"); n > 0) return devices::trapped_ion(n);
  if (suffix_grid(name, "grid", &rows, &cols)) {
    return devices::grid(rows, cols);
  }
  if (suffix_grid(name, "qdot", &rows, &cols)) {
    return devices::quantum_dot_array(rows, cols);
  }
  throw DeviceError("device_by_name: unknown device '" + name +
                    "' (builtin names: ibm_qx4, ibm_qx5, surface17, "
                    "surface7, linear<n>, grid<r>x<c>, all_to_all<n>, "
                    "ion<n>, qdot<r>x<c>)");
}

std::string save_reproducer(const Reproducer& repro, const std::string& dir,
                            const std::string& stem) {
  namespace fs = std::filesystem;
  fs::create_directories(dir);
  const fs::path qasm_path = fs::path(dir) / (stem + ".qasm");
  const fs::path json_path = fs::path(dir) / (stem + ".json");
  save_openqasm(repro.circuit, qasm_path.string());

  Json out;
  out["version"] = Json(1);
  out["qasm"] = Json(stem + ".qasm");
  out["device"] = Json(repro.device);
  out["placer"] = Json(repro.strategy.placer);
  out["router"] = Json(repro.strategy.router);
  // Written only when set, so reproducers stay loadable by older readers.
  if (repro.strategy.finisher) out["finisher"] = Json(true);
  // Decimal string: JSON numbers are doubles and would round the seed.
  out["seed"] = Json(std::to_string(repro.seed));
  out["trials"] = Json(repro.trials);
  out["fault"] = Json(fault_name(repro.fault));
  out["kind"] = Json(repro.kind);
  out["message"] = Json(repro.message);

  std::ofstream file(json_path);
  if (!file) {
    throw ParseError("cannot write reproducer: " + json_path.string());
  }
  file << out.dump(2) << "\n";
  return json_path.string();
}

Reproducer load_reproducer(const std::string& json_path) {
  std::ifstream file(json_path);
  if (!file) throw ParseError("cannot read reproducer: " + json_path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  const Json doc = Json::parse(buffer.str());

  Reproducer repro;
  repro.device = doc.at("device").as_string();
  repro.strategy.placer = doc.at("placer").as_string();
  repro.strategy.router = doc.at("router").as_string();
  // Backwards-compatible: absent in reproducers dumped before the
  // token_swap_finisher pass existed.
  if (const Json* finisher = doc.find("finisher")) {
    repro.strategy.finisher = finisher->as_bool();
  }
  repro.seed = std::strtoull(doc.at("seed").as_string().c_str(), nullptr, 10);
  repro.trials = doc.at("trials").as_int();
  repro.fault = fault_from_name(doc.at("fault").as_string());
  repro.kind = doc.at("kind").as_string();
  repro.message = doc.at("message").as_string();

  const std::filesystem::path qasm =
      std::filesystem::path(json_path).parent_path() /
      doc.at("qasm").as_string();
  repro.circuit = load_openqasm(qasm.string());
  return repro;
}

RunOutcome replay(const Reproducer& repro) {
  return run_strategy(repro.circuit, device_by_name(repro.device),
                      repro.strategy, repro.seed, repro.trials, repro.fault);
}

}  // namespace qmap::verify
