// Operation schedulers (task 3 of Sec. III-A).
//
// `schedule_asap` / `schedule_alap` respect only gate dependencies and real
// gate durations — the "before mapping" baseline of Sec. V's latency
// comparison. `schedule_constrained` additionally enforces a stack of
// classical-control ResourceConstraints, reproducing the Sec. V claim that
// control sharing inflates the latency (~2x on the running example).
#pragma once

#include <memory>
#include <vector>

#include "arch/device.hpp"
#include "ir/circuit.hpp"
#include "obs/obs.hpp"
#include "schedule/constraints.hpp"
#include "schedule/schedule.hpp"

namespace qmap {

/// As-soon-as-possible list schedule (dependencies + durations only).
[[nodiscard]] Schedule schedule_asap(const Circuit& circuit,
                                     const Device& device);

/// As-late-as-possible schedule with the same overall latency as ASAP.
[[nodiscard]] Schedule schedule_alap(const Circuit& circuit,
                                     const Device& device);

/// Cycle-driven list scheduler honouring `constraints`. Gates are
/// prioritized by downstream critical-path length. With an empty constraint
/// stack this degrades to an ASAP schedule. `obs` (maybe null) receives
/// cycle-advance / constraint-deferral counters and a depth histogram.
[[nodiscard]] Schedule schedule_constrained(
    const Circuit& circuit, const Device& device,
    const std::vector<std::unique_ptr<ResourceConstraint>>& constraints,
    obs::Observer* obs = nullptr);

/// Convenience: constrained schedule with the full Surface control stack
/// when the device declares control resources, plain ASAP otherwise.
[[nodiscard]] Schedule schedule_for_device(const Circuit& circuit,
                                           const Device& device,
                                           obs::Observer* obs = nullptr);

}  // namespace qmap
