// Router interface and shared routing utilities.
//
// A router consumes a circuit over program qubits (every gate arity <= 2;
// lower multi-qubit gates first) together with an initial placement, and
// produces a circuit over *physical* qubits in which every two-qubit gate
// satisfies the device's coupling graph. Routing SWAPs are emitted as
// explicit SWAP gates (placeholders for later native expansion, Fig. 6);
// forbidden CX orientations are repaired inline with 4 Hadamards (Sec. IV).
#pragma once

#include <memory>
#include <string>

#include "arch/artifacts.hpp"
#include "arch/device.hpp"
#include "engine/cancel.hpp"
#include "ir/circuit.hpp"
#include "ir/gate_stream.hpp"
#include "layout/placement.hpp"
#include "obs/obs.hpp"

#include <vector>

namespace qmap {

struct RoutingResult {
  Circuit circuit;      // on physical qubits; contains SWAP placeholders
  Placement initial;    // wire -> physical at circuit start
  Placement final;      // wire -> physical at circuit end
  std::size_t added_swaps = 0;
  std::size_t added_moves = 0;      // shuttle moves (Sec. VI-C devices)
  std::size_t added_bridges = 0;    // distance-2 CXs run as 4-CX BRIDGEs
  std::size_t direction_fixes = 0;  // CXs that needed the 4-H inversion
  double runtime_ms = 0.0;

  [[nodiscard]] std::string to_string() const;
};

/// Knobs of a streaming route (Router::route_stream).
struct StreamRouteOptions {
  /// Pull granularity from the GateSource: how many gates each window
  /// extension requests at once. A value >= the circuit size degenerates
  /// to the materialized window (useful for parity testing).
  std::size_t chunk_gates = 4096;
  /// Emitter-to-sink spill threshold: routed output gates buffered
  /// before being pushed downstream.
  std::size_t spill_gates = 4096;
};

/// Result of a streaming route: the RoutingResult counters without the
/// circuit (which went to the sink, chunk by chunk).
struct StreamRouteStats {
  Placement initial;    // wire -> physical at circuit start
  Placement final;      // wire -> physical at circuit end
  std::size_t added_swaps = 0;
  std::size_t added_moves = 0;
  std::size_t added_bridges = 0;
  std::size_t direction_fixes = 0;
  std::size_t gates_in = 0;           // program gates consumed
  std::size_t gates_out = 0;          // physical gates emitted
  std::size_t window_peak_gates = 0;  // resident-window high-water mark
  double runtime_ms = 0.0;
};

class Router {
 public:
  virtual ~Router() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual RoutingResult route(const Circuit& circuit,
                                            const Device& device,
                                            const Placement& initial) = 0;

  /// True when this router implements route_stream().
  [[nodiscard]] virtual bool supports_streaming() const { return false; }

  /// Routes a gate stream through a bounded window: program gates are
  /// pulled from `source` chunk by chunk, routed output is pushed to
  /// `sink` (including a final sink.flush()), and peak memory is
  /// O(window), not O(circuit). Streaming routers produce byte-identical
  /// output to route() on the materialized circuit. The base
  /// implementation throws MappingError; check supports_streaming().
  virtual StreamRouteStats route_stream(GateSource& source,
                                        const Device& device,
                                        const Placement& initial,
                                        GateSink& sink,
                                        const StreamRouteOptions& options);

  /// Attaches a cooperative cancellation token (engine/cancel.hpp, header
  /// only — no dependency on the engine library). Not owned; null detaches.
  /// Implementations poll it via check_cancelled() in their main loops and
  /// abort by letting CancelledError propagate.
  void set_cancel_token(const CancelToken* token) noexcept { cancel_ = token; }

  /// Attaches an observer for per-route counters and histograms (obs/).
  /// Not owned; null (the default) detaches and makes recording free.
  void set_observer(obs::Observer* observer) noexcept { observer_ = observer; }

  /// Attaches precomputed device artifacts (arch/artifacts.hpp). Not
  /// owned; null (the default) falls back to the device's own distance
  /// cache. The pass layer always attaches the run's shared bundle, so
  /// distance/shortest-path queries are pure reads into an immutable
  /// matrix regardless of how many threads route concurrently.
  void set_artifacts(const ArchArtifacts* artifacts) noexcept {
    artifacts_ = artifacts;
  }

 protected:
  /// Cancellation checkpoint for router main loops; cheap enough to call
  /// once per routing decision. Throws CancelledError when the token fired.
  void check_cancelled() const {
    if (cancel_ != nullptr) cancel_->check();
  }

  /// Maybe-null observability sink for implementations.
  [[nodiscard]] obs::Observer* observer() const noexcept { return observer_; }

  /// Maybe-null precomputed artifacts for implementations.
  [[nodiscard]] const ArchArtifacts* artifacts() const noexcept {
    return artifacts_;
  }

  /// Hop distance between physical qubits: the attached artifacts when
  /// present (immutable, shared), else the device's coupling cache.
  [[nodiscard]] int phys_distance(const Device& device, int a, int b) const {
    return artifacts_ != nullptr ? artifacts_->distance(a, b)
                                 : device.coupling().distance(a, b);
  }

  /// One shortest path (endpoints inclusive), same source preference as
  /// CouplingGraph::shortest_path whichever backend answers.
  [[nodiscard]] std::vector<int> phys_shortest_path(const Device& device,
                                                    int a, int b) const {
    return artifacts_ != nullptr ? artifacts_->shortest_path(a, b)
                                 : device.coupling().shortest_path(a, b);
  }

 private:
  const CancelToken* cancel_ = nullptr;
  obs::Observer* observer_ = nullptr;
  const ArchArtifacts* artifacts_ = nullptr;
};

/// Helper used by all router implementations: appends gates to the output
/// circuit while maintaining the placement and the routing statistics.
class RoutingEmitter {
 public:
  RoutingEmitter(const Device& device, Placement placement,
                 std::string circuit_name);

  [[nodiscard]] const Placement& placement() const noexcept {
    return placement_;
  }
  [[nodiscard]] const Device& device() const noexcept { return *device_; }

  /// Pre-sizes the output gate list. Routers call this with an estimate
  /// of the final gate count (program gates + inserted SWAPs + direction
  /// fixes); over-estimating only costs slack capacity.
  void reserve(std::size_t gates) { circuit_.reserve(gates); }

  /// Emits a program-qubit gate at its current physical location.
  /// Two-qubit gates must be physically adjacent; directional gates with a
  /// forbidden orientation are wrapped in Hadamards. Throws MappingError on
  /// non-adjacent operands. The rvalue overload moves the gate's operand
  /// and parameter storage straight into the output — the streaming path
  /// (and any caller done with its copy) emits without per-gate
  /// allocations.
  void emit_program_gate(const Gate& gate) { emit_mapped(gate); }
  void emit_program_gate(Gate&& gate) { emit_mapped(std::move(gate)); }

  /// Emits a SWAP between two adjacent physical qubits and updates the
  /// placement.
  void emit_swap(int phys_a, int phys_b);

  /// Emits a shuttle Move: relocates the occupant of `phys_from` into the
  /// empty site `phys_to`. Requires device shuttling support, adjacency,
  /// and that `phys_to` holds a free wire. Updates the placement.
  void emit_move(int phys_from, int phys_to);

  /// Emits the 4-CX BRIDGE template realizing CX(phys_c, phys_t) through
  /// the middle qubit `phys_m`:
  ///   CX(c,m) CX(m,t) CX(c,m) CX(m,t)
  /// The placement is untouched (a bridge moves no wires). Requires both
  /// legs adjacent and control/target *not* adjacent (distance exactly 2);
  /// forbidden leg orientations are repaired with Hadamards like any CX.
  void emit_bridge(int phys_c, int phys_m, int phys_t);

  /// Moves this emitter's state into a RoutingResult.
  [[nodiscard]] RoutingResult finish(const Placement& initial,
                                     double runtime_ms) &&;

  /// Streaming mode: attaches a downstream sink. Once set, accumulated
  /// output gates are moved to the sink whenever spill_if_needed() sees
  /// `spill_gates` or more of them (and unconditionally by spill_all()),
  /// keeping the emitter's resident state O(spill threshold). finish()
  /// then returns an empty circuit — the gates went downstream.
  void set_sink(GateSink* sink, std::size_t spill_gates) noexcept {
    sink_ = sink;
    spill_gates_ = spill_gates;
  }
  void spill_if_needed();
  /// Pushes any remaining buffered gates to the sink (no sink.flush() —
  /// the driver owns stream termination).
  void spill_all();

  /// Total gates emitted: spilled to the sink plus still buffered.
  [[nodiscard]] std::size_t total_emitted() const noexcept {
    return spilled_gates_ + circuit_.size();
  }
  [[nodiscard]] std::size_t added_swaps() const noexcept {
    return added_swaps_;
  }
  [[nodiscard]] std::size_t added_moves() const noexcept {
    return added_moves_;
  }
  [[nodiscard]] std::size_t added_bridges() const noexcept {
    return added_bridges_;
  }
  [[nodiscard]] std::size_t direction_fixes() const noexcept {
    return direction_fixes_;
  }

 private:
  // One coupling-legal CX, wrapped in Hadamards when the orientation is
  // forbidden (shared by the four bridge legs).
  void emit_physical_cx(int phys_control, int phys_target);
  // Maps program operands to physical and appends (both emit_program_gate
  // overloads funnel here; by-value so moved-in gates stay allocation-free).
  void emit_mapped(Gate gate);

  const Device* device_;
  Placement placement_;
  Circuit circuit_;
  GateSink* sink_ = nullptr;
  std::size_t spill_gates_ = 0;
  std::size_t spilled_gates_ = 0;
  std::vector<Gate> spill_buf_;  // recycled between spills
  std::size_t added_swaps_ = 0;
  std::size_t added_moves_ = 0;
  std::size_t added_bridges_ = 0;
  std::size_t direction_fixes_ = 0;
};

/// Validation helper (used by tests and assertions): true when every
/// two-qubit gate of `circuit` is allowed by the device coupling graph,
/// orientation included.
[[nodiscard]] bool respects_coupling(const Circuit& circuit,
                                     const Device& device);

/// Throws MappingError when the circuit is not routable at all:
/// wider than the device, device disconnected, or gates of arity > 2.
void check_routable(const Circuit& circuit, const Device& device);

}  // namespace qmap
