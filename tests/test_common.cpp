// Tests for the common support layer: strings, JSON, matrices, RNG.
#include <cmath>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"

namespace qmap {
namespace {

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\n x \r"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strings, SplitWhitespace) {
  const auto parts = split_whitespace("  foo\tbar  baz\n");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[2], "baz");
  EXPECT_TRUE(split_whitespace("   ").empty());
}

TEST(Strings, StartsWithAndLower) {
  EXPECT_TRUE(starts_with("OPENQASM 2.0", "OPENQASM"));
  EXPECT_FALSE(starts_with("qasm", "OPENQASM"));
  EXPECT_EQ(to_lower("CNot"), "cnot");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, JsonEscapeQuotesAndBackslashes) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_quote("x"), "\"x\"");
  EXPECT_EQ(json_quote("\"\\"), "\"\\\"\\\\\"");
}

TEST(Strings, JsonEscapeControlCharacters) {
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape("\b\f\r"), "\\b\\f\\r");
  EXPECT_EQ(json_escape(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
  EXPECT_EQ(json_escape(""), "");
}

TEST(Strings, JsonEscapeAgreesWithJsonDumper) {
  // The Json dumper must produce exactly json_quote for strings, because
  // it delegates to the same escaper (hoisted from json.cpp).
  const std::string nasty = "q\"u\\o\nt\te\x02";
  EXPECT_EQ(Json(nasty).dump(), json_quote(nasty));
  // And the escaped form must survive a parse round-trip.
  EXPECT_EQ(Json::parse(json_quote(nasty)).as_string(), nasty);
}

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_NEAR(Json::parse("-2.5e1").as_number(), -25.0, 1e-12);
  EXPECT_EQ(Json::parse("\"hi\\n\"").as_string(), "hi\n");
  EXPECT_EQ(Json::parse("42").as_int(), 42);
}

TEST(Json, ParsesNestedStructures) {
  const Json doc = Json::parse(R"({
    "name": "surface17",           // comments allowed in configs
    "edges": [[1, 5], [1, 4]],
    "nested": {"a": [true, null]}
  })");
  EXPECT_EQ(doc.at("name").as_string(), "surface17");
  EXPECT_EQ(doc.at("edges").size(), 2u);
  EXPECT_EQ(doc.at("edges").at(0).at(1).as_int(), 5);
  EXPECT_TRUE(doc.at("nested").at("a").at(1).is_null());
  EXPECT_TRUE(doc.contains("name"));
  EXPECT_FALSE(doc.contains("missing"));
}

TEST(Json, RoundTripsThroughDump) {
  const std::string text =
      R"({"a":[1,2.5,"x"],"b":{"c":true,"d":null},"e":-3})";
  const Json doc = Json::parse(text);
  const Json reparsed = Json::parse(doc.dump());
  EXPECT_TRUE(doc == reparsed);
  // Pretty printing parses back too.
  EXPECT_TRUE(Json::parse(doc.dump(2)) == doc);
}

TEST(Json, ReportsErrorsWithLocation) {
  try {
    (void)Json::parse("{\n  \"a\": [1, 2,\n}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_GE(e.line(), 2);
  }
}

TEST(Json, RejectsTrailingGarbage) {
  EXPECT_THROW((void)Json::parse("{} extra"), ParseError);
  EXPECT_THROW((void)Json::parse("[1, 2"), ParseError);
  EXPECT_THROW((void)Json::parse(""), ParseError);
}

TEST(Json, TypeMismatchThrows) {
  const Json doc = Json::parse("[1]");
  EXPECT_THROW((void)doc.as_object(), ParseError);
  EXPECT_THROW((void)doc.at("key"), ParseError);
  EXPECT_THROW((void)Json::parse("1.5").as_int(), ParseError);
}

TEST(Json, UnicodeEscapes) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
}

TEST(Matrix, IdentityAndMultiplication) {
  const Matrix id = Matrix::identity(4);
  Matrix m(4, 4);
  m.at(0, 3) = Complex{2.0, 1.0};
  EXPECT_TRUE((id * m).approx_equal(m));
  EXPECT_TRUE((m * id).approx_equal(m));
}

TEST(Matrix, KroneckerProductDimensions) {
  const Matrix a = Matrix::identity(2);
  const Matrix b = Matrix::identity(4);
  const Matrix k = a.kron(b);
  EXPECT_EQ(k.rows(), 8u);
  EXPECT_TRUE(k.approx_equal(Matrix::identity(8)));
}

TEST(Matrix, DaggerIsConjugateTranspose) {
  Matrix m(2, 2);
  m.at(0, 1) = Complex{1.0, 2.0};
  const Matrix d = m.dagger();
  EXPECT_NEAR(d.at(1, 0).imag(), -2.0, 1e-12);
}

TEST(Matrix, UnitarityCheck) {
  const double s = 1.0 / std::sqrt(2.0);
  const Matrix h(2, {Complex{s, 0}, Complex{s, 0}, Complex{s, 0},
                     Complex{-s, 0}});
  EXPECT_TRUE(h.is_unitary());
  Matrix not_unitary(2, 2);
  not_unitary.at(0, 0) = 3.0;
  EXPECT_FALSE(not_unitary.is_unitary());
}

TEST(Matrix, GlobalPhaseEquality) {
  const Matrix id = Matrix::identity(2);
  Matrix phased(2, 2);
  const Complex phase = std::polar(1.0, 0.7);
  phased.at(0, 0) = phase;
  phased.at(1, 1) = phase;
  EXPECT_TRUE(id.equal_up_to_global_phase(phased));
  Matrix scaled(2, 2);
  scaled.at(0, 0) = 2.0;
  scaled.at(1, 1) = 2.0;
  EXPECT_FALSE(id.equal_up_to_global_phase(scaled));
}

TEST(Matrix, InitializerListValidation) {
  EXPECT_THROW(Matrix(2, {Complex{1, 0}}), Error);
}

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.index(1000), b.index(1000));
  }
}

TEST(Rng, RangesRespected) {
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const int v = rng.integer(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
    EXPECT_LT(rng.index(7), 7u);
  }
}

}  // namespace
}  // namespace qmap
