// Quickstart: map the paper's running example (Fig. 1) onto IBM QX4.
//
// Demonstrates the core public API in ~60 lines: build a circuit, pick a
// built-in device, compile (decompose -> place -> route -> schedule),
// inspect the result, and verify correctness by simulation.
#include <cstdio>
#include <iostream>

#include "arch/builtin.hpp"
#include "core/compiler.hpp"
#include "ir/ascii.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace qmap;

  // 1. The quantum algorithm: the paper's Fig. 1 example circuit.
  const Circuit circuit = workloads::fig1_example();
  std::cout << "=== Input circuit (program qubits, Fig. 1(a)) ===\n"
            << draw_ascii(circuit) << "\n";

  // 2. The quantum device: IBM QX4 with its directed CNOT coupling graph
  //    (Fig. 3(a)) and native gate set {U(theta,phi,lambda), CX}.
  const Device device = devices::ibm_qx4();
  std::cout << "=== Target device ===\n" << device.summary() << "\n";

  // 3. Compile. The default pipeline lowers to the native gate set, finds
  //    an initial placement, routes with the SABRE-style heuristic and
  //    schedules the result.
  CompilerOptions options;
  options.placer = "exhaustive";  // optimal placement (tiny instance)
  options.router = "astar";       // layer-A* heuristic [54], as in Fig. 3(c)
  const Compiler compiler(device, options);
  const CompilationResult result = compiler.compile(circuit);

  std::cout << "=== Compilation report ===\n" << result.report() << "\n";

  AsciiOptions physical;
  physical.qubit_prefix = 'Q';  // physical qubits, paper notation
  std::cout << "=== Routed circuit (physical qubits, SWAPs not yet "
               "expanded) ===\n"
            << draw_ascii(result.routing.circuit, physical) << "\n";
  std::cout << "initial placement: " << result.routing.initial.to_string()
            << "\nfinal placement:   " << result.routing.final.to_string()
            << "\n\n";

  // 4. Verify: the mapped circuit is unitarily equivalent to the input
  //    under the reported placements (randomized state-vector check).
  const bool ok = Compiler::verify(result);
  std::cout << "verification: " << (ok ? "EQUIVALENT" : "MISMATCH") << "\n";
  return ok ? 0 : 1;
}
