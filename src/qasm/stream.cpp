#include "qasm/stream.hpp"

#include <ostream>
#include <utility>

#include "common/error.hpp"
#include "qasm/openqasm_parser.hpp"

namespace qmap {

namespace {
// Sink-side text buffer flush threshold. Large enough to amortize the
// ostream virtual-call cost, small enough to stay cache-friendly.
constexpr std::size_t kSinkFlushBytes = 64 * 1024;
}  // namespace

QasmStreamSource::QasmStreamSource(std::istream& in, std::string name)
    : lexer_(std::make_unique<qasm_detail::StatementLexer>(in)),
      parser_(std::make_unique<qasm_detail::OpenQasmParser>()),
      name_(std::move(name)) {
  // Prime: parse up to the first gate-producing statement so the
  // register layout (and hence num_qubits) is frozen before consumers
  // size their state. A gate-free program primes to EOF and finalizes.
  while (!parser_->circuit_started() && pump()) {
  }
}

QasmStreamSource::~QasmStreamSource() = default;

int QasmStreamSource::num_qubits() const { return parser_->num_qubits(); }

int QasmStreamSource::num_cbits() const { return parser_->num_cbits(); }

bool QasmStreamSource::pump() {
  if (done_) return false;
  int line = 1;
  int column = 1;
  if (!lexer_->next(statement_, line, column)) {
    parser_->finalize();
    done_ = true;
    return false;
  }
  parser_->handle_statement(statement_, line, column);
  return true;
}

std::size_t QasmStreamSource::pull(std::vector<Gate>& out,
                                   std::size_t max_gates) {
  std::size_t pulled = 0;
  for (;;) {
    while (pending_pos_ < pending_.size() && pulled < max_gates) {
      out.push_back(std::move(pending_[pending_pos_++]));
      ++pulled;
    }
    if (pulled == max_gates) break;
    if (pending_pos_ == pending_.size()) {
      pending_.clear();
      pending_pos_ = 0;
      std::vector<Gate> drained = parser_->drain_gates();
      if (!drained.empty()) {
        pending_ = std::move(drained);
        continue;
      }
    }
    if (!pump()) break;
  }
  return pulled;
}

QasmStreamSink::QasmStreamSink(std::ostream& out, int num_qubits,
                               int num_cbits)
    : out_(&out), num_cbits_(num_cbits) {
  buffer_ = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
  buffer_ += "qreg q[" + std::to_string(num_qubits) + "];\n";
  if (num_cbits_ > 0) {
    buffer_ += "creg c[" + std::to_string(num_cbits_) + "];\n";
  }
}

void QasmStreamSink::append(const Gate& gate) {
  if (gate.kind == GateKind::Measure && gate.cbit >= num_cbits_) {
    throw CircuitError(
        "QasmStreamSink: measure into classical bit " +
        std::to_string(gate.cbit) + " but only " + std::to_string(num_cbits_) +
        " declared; pass the final num_cbits at construction");
  }
  qasm_detail::append_openqasm_gate(buffer_, gate);
  ++gates_;
  if (buffer_.size() >= kSinkFlushBytes) {
    out_->write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }
}

void QasmStreamSink::put(Gate gate) { append(gate); }

void QasmStreamSink::put_chunk(std::vector<Gate>& gates) {
  for (const Gate& gate : gates) append(gate);
}

void QasmStreamSink::flush() {
  if (!buffer_.empty()) {
    out_->write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }
  out_->flush();
}

}  // namespace qmap
