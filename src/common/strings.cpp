#include "common/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace qmap {

std::string_view trim(std::string_view s) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && is_space(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && is_space(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_whitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    std::size_t begin = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > begin) out.emplace_back(s.substr(begin, i - begin));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  out += json_escape(s);
  out += '"';
  return out;
}

}  // namespace qmap
