// Router shoot-out across devices and workloads — the Sec. III-B design
// space (cost functions, exact vs heuristic, look-ahead/look-back) made
// runnable. For each (device, workload) the example routes with every
// router and reports added SWAPs, direction fixes, final gate count, depth
// and router runtime, verifying each result by simulation.
#include <cstdio>
#include <iostream>
#include <vector>

#include "arch/builtin.hpp"
#include "core/compiler.hpp"
#include "core/report.hpp"
#include "decompose/decomposer.hpp"
#include "ir/metrics.hpp"
#include "layout/placers.hpp"
#include "sim/equivalence.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace qmap;
  Rng workload_rng(42);

  const std::vector<Device> targets = {devices::ibm_qx4(),
                                       devices::surface17(),
                                       devices::grid(4, 4)};
  std::vector<std::pair<std::string, Circuit>> workloads = {
      {"fig1", workloads::fig1_example()},
      {"ghz5", workloads::ghz(5)},
      {"qft5", workloads::qft(5)},
      {"bv4", workloads::bernstein_vazirani({1, 0, 1, 1}).unitary_part()},
      {"random6", workloads::random_circuit(6, 60, workload_rng, 0.4)},
  };

  for (const Device& device : targets) {
    std::cout << "=== " << device.name() << " ===\n";
    TextTable table({"workload", "router", "swaps", "dir-fixes",
                     "native gates", "depth", "runtime ms", "verified"});
    for (const auto& [label, circuit] : workloads) {
      if (circuit.num_qubits() > device.num_qubits()) continue;
      const Circuit lowered =
          lower_to_device(circuit, device, /*keep_swaps=*/true);
      const Placement initial = GreedyPlacer().place(lowered, device);
      for (const char* router_name :
           {"naive", "sabre", "astar", "qmap", "exact"}) {
        if (std::string(router_name) == "exact" && device.num_qubits() > 5) {
          continue;  // exact is for small devices by design (Sec. IV)
        }
        const RoutingResult routed =
            make_router(router_name)->route(lowered, device, initial);
        Circuit final_circuit = expand_swaps(routed.circuit, device);
        final_circuit = fix_cx_directions(final_circuit, device);
        final_circuit = lower_single_qubit(
            fuse_single_qubit(final_circuit), device);
        const CircuitMetrics metrics = compute_metrics(final_circuit);
        Rng verify_rng(7);
        const bool ok = mapping_equivalent(
            circuit, final_circuit, routed.initial.wire_to_phys(),
            routed.final.wire_to_phys(), verify_rng, 2);
        table.add_row({label, router_name, TextTable::num(routed.added_swaps),
                       TextTable::num(routed.direction_fixes),
                       TextTable::num(metrics.total_gates),
                       TextTable::num(metrics.depth),
                       TextTable::num(routed.runtime_ms, 3),
                       ok ? "yes" : "NO"});
        if (!ok) {
          std::cerr << "verification failed for " << label << " with "
                    << router_name << " on " << device.name() << "\n";
          return 1;
        }
      }
    }
    std::cout << table.str() << "\n";
  }
  return 0;
}
