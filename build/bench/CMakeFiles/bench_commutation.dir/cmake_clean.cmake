file(REMOVE_RECURSE
  "CMakeFiles/bench_commutation.dir/bench_commutation.cpp.o"
  "CMakeFiles/bench_commutation.dir/bench_commutation.cpp.o.d"
  "bench_commutation"
  "bench_commutation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_commutation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
