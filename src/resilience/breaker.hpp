// Per-dependency circuit breaker over the ErrorClass taxonomy.
//
// A long-lived compile service fronts many devices; when one device's
// pipeline starts failing deterministically (a corrupted calibration, a
// pass stack that crashes on that topology), every further request routed
// at it burns a full fallback-ladder run just to fail again. The breaker
// is the classic three-state remedy, wired to the same recovery taxonomy
// the retry/fallback ladder acts on (common/error.hpp):
//
//   Closed    — normal operation. Failures classified Permanent (or a
//               crash that escaped the ladder) count; `failure_threshold`
//               *consecutive* ones trip the breaker. Transient and
//               ResourceExhausted outcomes never count: a deadline slice
//               expiring or a too-big request says nothing about the
//               device's health.
//   Open      — fast-fail: try_acquire() denies immediately (the service
//               answers `status:"unavailable"` with `retry_after_ms`)
//               until `open_ms` has elapsed on the injectable clock.
//   HalfOpen  — after `open_ms`, up to `half_open_max_probes` concurrent
//               probe requests are let through. `half_open_successes`
//               successful probes close the breaker; one Permanent
//               failure re-opens it (with a fresh open window).
//
// Every try_acquire() that returned true must be balanced by exactly one
// of on_success() / on_failure() / release() — release() is the neutral
// verdict for outcomes that say nothing about the dependency (cache hit,
// admission rejection, cancellation). `record(ok, error_class)` maps a
// compile outcome onto that trio. State transitions invoke the
// `on_transition` callback (under the lock; keep it cheap — the compile
// service increments service.breaker_* counters there).
//
// The clock is injectable (BreakerConfig::now_us) so tests can step
// deterministically through open -> half-open -> closed without sleeping,
// mirroring CacheConfig::now_us.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>

#include "common/error.hpp"

namespace qmap::resilience {

struct BreakerConfig {
  /// Consecutive Permanent/crash failures that trip the breaker.
  /// <= 0 disables the breaker entirely (try_acquire always passes).
  int failure_threshold = 5;
  /// How long the breaker stays open before allowing half-open probes.
  double open_ms = 5000.0;
  /// Concurrent probe requests admitted while half-open.
  int half_open_max_probes = 1;
  /// Successful probes required to close again.
  int half_open_successes = 1;
  /// Microsecond clock for the open window; defaults to steady_clock.
  /// Tests inject a fake to step through the states deterministically.
  std::function<std::int64_t()> now_us;
};

enum class BreakerState { Closed, Open, HalfOpen };

[[nodiscard]] const char* breaker_state_name(BreakerState state);

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerConfig config = {});

  /// Admission check. True = proceed (and owe exactly one verdict call);
  /// false = fast-fail without touching the dependency. An expired open
  /// window transitions Open -> HalfOpen inside this call.
  [[nodiscard]] bool try_acquire();

  /// Neutral verdict: the acquisition ran no work that reflects on the
  /// dependency (cache hit, coalesced join, admission rejection,
  /// cancellation). Frees a half-open probe slot without counting.
  void release();
  /// The acquired work succeeded.
  void on_success();
  /// The acquired work failed in a way that indicts the dependency
  /// (ErrorClass::Permanent or an escaped exception).
  void on_failure();
  /// Maps a compile outcome onto the verdict trio: ok -> on_success,
  /// Permanent -> on_failure, anything else (Transient, including
  /// cancellation, and ResourceExhausted) -> release.
  void record(bool ok, ErrorClass error_class);

  [[nodiscard]] BreakerState state() const;
  /// Milliseconds until the open window lapses (0 unless Open).
  [[nodiscard]] double retry_after_ms() const;
  [[nodiscard]] int consecutive_failures() const;

  /// Invoked on every state change, under the breaker lock, with the new
  /// state. Set once right after construction, before concurrent use.
  std::function<void(BreakerState)> on_transition;

 private:
  [[nodiscard]] std::int64_t now_us_() const;
  void transition_(BreakerState next);  // requires mutex_ held

  BreakerConfig config_;
  mutable std::mutex mutex_;
  BreakerState state_ = BreakerState::Closed;
  int consecutive_failures_ = 0;
  int probes_in_flight_ = 0;
  int probe_successes_ = 0;
  std::int64_t opened_at_us_ = 0;
};

}  // namespace qmap::resilience
