// Circuit cost metrics — the quantities every mapper in the paper reports
// (Sec. III-B "Cost function"): gate counts, added-SWAP counts, circuit
// depth, and duration-weighted latency.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "ir/circuit.hpp"

namespace qmap {

struct CircuitMetrics {
  std::size_t total_gates = 0;       // excluding barriers
  std::size_t single_qubit_gates = 0;
  std::size_t two_qubit_gates = 0;
  std::size_t swap_gates = 0;
  std::size_t cx_gates = 0;
  std::size_t cz_gates = 0;
  std::size_t h_gates = 0;
  std::size_t measurements = 0;
  int depth = 0;            // unit-duration critical path
  int two_qubit_depth = 0;  // critical path counting only two-qubit gates

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] CircuitMetrics compute_metrics(const Circuit& circuit);

/// Per-kind histogram, keyed by canonical mnemonic.
[[nodiscard]] std::map<std::string, std::size_t> gate_histogram(
    const Circuit& circuit);

/// Duration-weighted critical path ("latency" in the paper's Qmap
/// discussion, Sec. V). `duration(gate)` returns the duration of one gate in
/// arbitrary units (cycles or ns); barriers always cost 0.
[[nodiscard]] double circuit_latency(
    const Circuit& circuit, const std::function<double(const Gate&)>& duration);

/// Overhead summary comparing a mapped circuit against its source.
struct MappingOverhead {
  std::size_t added_gates = 0;
  std::size_t added_two_qubit_gates = 0;
  int added_depth = 0;
  double gate_ratio = 1.0;   // mapped/original total gates
  double depth_ratio = 1.0;  // mapped/original depth

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] MappingOverhead compute_overhead(const Circuit& original,
                                               const Circuit& mapped);

}  // namespace qmap
