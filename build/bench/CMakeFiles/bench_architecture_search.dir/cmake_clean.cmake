file(REMOVE_RECURSE
  "CMakeFiles/bench_architecture_search.dir/bench_architecture_search.cpp.o"
  "CMakeFiles/bench_architecture_search.dir/bench_architecture_search.cpp.o.d"
  "bench_architecture_search"
  "bench_architecture_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_architecture_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
