file(REMOVE_RECURSE
  "libqmap_workloads.a"
)
