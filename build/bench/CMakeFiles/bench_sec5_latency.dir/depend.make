# Empty dependencies file for bench_sec5_latency.
# This may be replaced when dependencies are built.
