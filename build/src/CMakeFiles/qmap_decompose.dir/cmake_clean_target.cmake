file(REMOVE_RECURSE
  "libqmap_decompose.a"
)
