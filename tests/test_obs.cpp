// Observability layer (src/obs/) tests.
//
// The determinism contract under test: for a fixed seed, the metrics
// fingerprint and the span count of an instrumented portfolio compile are
// byte-identical at 1, 2 and 8 worker threads; histogram bucket edges are
// pinned; the trace-buffer drop counter is exact under concurrent
// recording; and the chrome-trace exporter emits balanced B/E events that
// a fake clock makes byte-stable (golden file, QMAP_REGEN_GOLDEN=1
// regenerates).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "arch/builtin.hpp"
#include "engine/portfolio.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "resilience/resilience.hpp"
#include "workloads/workloads.hpp"

namespace qmap {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) ADD_FAILURE() << "cannot read " << path;
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(Metrics, CountersGaugesHistogramsRoundTrip) {
  obs::MetricsRegistry metrics;
  metrics.add("alpha");
  metrics.add("alpha", 4);
  metrics.set_gauge("beta", 2.5);
  metrics.observe("gamma", 3.0);
  EXPECT_EQ(metrics.counter("alpha"), 5u);
  EXPECT_DOUBLE_EQ(metrics.gauge("beta"), 2.5);
  EXPECT_EQ(metrics.histogram("gamma").count, 1u);
  EXPECT_EQ(metrics.counter("missing"), 0u);
}

TEST(Metrics, DefaultHistogramBoundariesArePinned) {
  const std::vector<double> expected = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512};
  EXPECT_EQ(obs::default_histogram_boundaries(), expected);
}

TEST(Metrics, HistogramBucketPlacementIncludingOverflow) {
  obs::MetricsRegistry metrics;
  metrics.observe("h", 1.0);    // bucket 0 (<= 1)
  metrics.observe("h", 2.0);    // bucket 1
  metrics.observe("h", 3.0);    // bucket 2 (<= 4)
  metrics.observe("h", 512.0);  // bucket 9 (last finite)
  metrics.observe("h", 513.0);  // overflow bucket
  const obs::HistogramSnapshot snapshot = metrics.histogram("h");
  ASSERT_EQ(snapshot.counts.size(),
            obs::default_histogram_boundaries().size() + 1);
  EXPECT_EQ(snapshot.counts[0], 1u);
  EXPECT_EQ(snapshot.counts[1], 1u);
  EXPECT_EQ(snapshot.counts[2], 1u);
  EXPECT_EQ(snapshot.counts[9], 1u);
  EXPECT_EQ(snapshot.counts.back(), 1u);
  EXPECT_EQ(snapshot.count, 5u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 1031.0);
}

TEST(Metrics, FingerprintExcludesTimingMetrics) {
  obs::MetricsRegistry metrics;
  metrics.add("work_items", 3);
  const std::string before = metrics.fingerprint();
  metrics.add("stage_wall_ms", 17);
  metrics.set_gauge("last_wall_ms", 123.456);
  metrics.observe("case_ms", 9.5);
  EXPECT_EQ(metrics.fingerprint(), before)
      << "metrics named *_ms must not enter the fingerprint";
  // ...but they do appear in the full dump.
  const std::string full = metrics.to_json(true).dump();
  EXPECT_NE(full.find("stage_wall_ms"), std::string::npos);
}

// ---------------------------------------------------------------------------
// TraceBuffer
// ---------------------------------------------------------------------------

TEST(TraceBuffer, ExactDropCountWhenCapacityExceededConcurrently) {
  obs::ObsConfig config;
  config.trace_capacity = 64;
  config.trace_shards = 4;
  obs::Observer observer(config);

  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 100;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&observer] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        obs::Span span(&observer, "work", "test");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  constexpr std::uint64_t kTotal = kThreads * kSpansPerThread;
  EXPECT_EQ(observer.trace().size(), 64u);
  EXPECT_EQ(observer.trace().dropped(), kTotal - 64u)
      << "every record() past capacity must count as exactly one drop";
}

TEST(TraceBuffer, ClearResetsDropsAndAdmission) {
  obs::TraceBuffer buffer(/*capacity=*/2, /*shards=*/1);
  obs::SpanRecord record;
  for (int i = 0; i < 5; ++i) {
    record.seq = static_cast<std::uint64_t>(i + 1);
    (void)buffer.record(record);
  }
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.dropped(), 3u);
  buffer.clear();
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.dropped(), 0u);
  record.seq = 99;
  EXPECT_TRUE(buffer.record(record));
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

TEST(Span, NestsUnderInnermostOpenSpanOnSameThread) {
  obs::Observer observer;
  {
    obs::Span outer(&observer, "outer", "test");
    obs::Span inner(&observer, "inner", "test");
    EXPECT_NE(outer.seq(), 0u);
  }
  const std::vector<obs::SpanRecord> spans = observer.trace().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Snapshot order is (tid, seq): outer begun first.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent_seq, 0u);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent_seq, spans[0].seq);
}

TEST(Span, ExplicitParentCrossesThreads) {
  obs::Observer observer;
  obs::Span root(&observer, "root", "test");
  const std::uint64_t root_seq = root.seq();
  std::thread worker([&observer, root_seq] {
    obs::Span child(&observer, "child", "test", root_seq);
  });
  worker.join();
  root.end();
  const std::vector<obs::SpanRecord> spans = observer.trace().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  for (const obs::SpanRecord& span : spans) {
    if (span.name == "child") {
      EXPECT_EQ(span.parent_seq, root_seq);
      EXPECT_NE(span.tid, 0) << "worker thread must get its own ordinal";
    }
  }
}

TEST(Span, NullAndDisabledObserversAreInertNoOps) {
  obs::Span null_span(nullptr, "x", "y");
  EXPECT_FALSE(null_span.active());
  null_span.arg("k", "v");
  null_span.end();
  obs::add(nullptr, "counter");
  obs::set_gauge(nullptr, "gauge", 1.0);
  obs::observe(nullptr, "hist", 1.0);
  obs::instant(nullptr, "i", "c");

  obs::ObsConfig off;
  off.enabled = false;
  obs::Observer disabled(off);
  {
    obs::Span span(&disabled, "x", "y");
    EXPECT_FALSE(span.active());
  }
  obs::add(&disabled, "counter");
  disabled.instant("i", "c");
  EXPECT_EQ(disabled.trace().size(), 0u);
  EXPECT_EQ(disabled.metrics().counter("counter"), 0u);
}

// ---------------------------------------------------------------------------
// Determinism across thread counts (tentpole acceptance criterion)
// ---------------------------------------------------------------------------

TEST(ObsDeterminism, PortfolioMetricsByteIdenticalAcrossThreadCounts) {
  const Device device = devices::surface17();
  const Circuit circuit = workloads::ghz(7);

  std::vector<std::string> fingerprints;
  std::vector<std::size_t> span_counts;
  for (const int threads : {1, 2, 8}) {
    obs::Observer observer;
    PortfolioOptions options;
    options.num_threads = threads;
    options.obs = &observer;
    const PortfolioResult result =
        PortfolioCompiler(device, options).compile(circuit);
    EXPECT_GE(result.winner_index, 0);
    fingerprints.push_back(observer.metrics().fingerprint());
    span_counts.push_back(observer.trace().size());
    EXPECT_EQ(observer.trace().dropped(), 0u);
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
  EXPECT_EQ(fingerprints[0], fingerprints[2]);
  EXPECT_EQ(span_counts[0], span_counts[1]);
  EXPECT_EQ(span_counts[0], span_counts[2]);
  EXPECT_GT(span_counts[0], 0u);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(ChromeTrace, GoldenExportWithFakeClock) {
  obs::Observer observer;
  std::int64_t fake_now = 0;
  observer.set_clock([&fake_now] { return fake_now += 100; });

  {
    obs::Span compile(&observer, "compile", "core");
    compile.arg("circuit", "ghz3");
    {
      obs::Span placer(&observer, "placer", "stage");
    }
    {
      obs::Span router(&observer, "router", "stage");
      observer.instant("fault:stall-ms", "fault");
    }
  }
  const std::string trace = obs::export_chrome_trace(observer);

  const obs::TraceValidation validation = obs::validate_chrome_trace(trace);
  EXPECT_TRUE(validation.ok) << validation.to_string();
  EXPECT_EQ(validation.begin_events, validation.end_events);

  const std::string golden_path =
      std::string(QMAP_GOLDEN_DIR) + "/obs_trace.json";
  const char* regen = std::getenv("QMAP_REGEN_GOLDEN");
  if (regen != nullptr && *regen != '\0') {
    std::ofstream out(golden_path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << golden_path;
    out << trace;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  EXPECT_EQ(trace, read_file(golden_path))
      << "chrome-trace export drifted from " << golden_path
      << " (QMAP_REGEN_GOLDEN=1 regenerates after an intentional change)";
}

TEST(ChromeTrace, RealPortfolioTraceIsStructurallyValid) {
  const Device device = devices::surface17();
  const Circuit circuit = workloads::qft(5);

  obs::Observer observer;
  PortfolioOptions options;
  options.num_threads = 4;
  options.obs = &observer;
  const PortfolioResult result =
      PortfolioCompiler(device, options).compile(circuit);
  ASSERT_GE(result.winner_index, 0);

  const std::string trace = obs::export_chrome_trace(observer);
  const obs::TraceValidation validation = obs::validate_chrome_trace(trace);
  EXPECT_TRUE(validation.ok) << validation.to_string();
  EXPECT_GT(validation.events, 0u);
  EXPECT_EQ(validation.begin_events, validation.end_events)
      << "every B needs a matching E";

  // The metrics rider must parse as part of the same JSON document.
  const Json document = Json::parse(trace);
  EXPECT_NE(document.find("metrics"), nullptr);
}

TEST(ChromeTrace, ValidatorRejectsBrokenTraces) {
  EXPECT_FALSE(obs::validate_chrome_trace("not json").ok);
  EXPECT_FALSE(obs::validate_chrome_trace("{}").ok);
  // Unbalanced: a lone B.
  EXPECT_FALSE(
      obs::validate_chrome_trace(
          R"({"traceEvents":[{"name":"a","ph":"B","ts":1,"pid":0,"tid":0}]})")
          .ok);
  // E with no open B.
  EXPECT_FALSE(
      obs::validate_chrome_trace(
          R"({"traceEvents":[{"name":"a","ph":"E","ts":1,"pid":0,"tid":0}]})")
          .ok);
  // Negative duration.
  EXPECT_FALSE(obs::validate_chrome_trace(
                   R"({"traceEvents":[)"
                   R"({"name":"a","ph":"B","ts":5,"pid":0,"tid":0},)"
                   R"({"name":"a","ph":"E","ts":1,"pid":0,"tid":0}]})")
                   .ok);
  // Balanced pair passes.
  EXPECT_TRUE(obs::validate_chrome_trace(
                  R"({"traceEvents":[)"
                  R"({"name":"a","ph":"B","ts":1,"pid":0,"tid":0},)"
                  R"({"name":"a","ph":"E","ts":5,"pid":0,"tid":0}]})")
                  .ok);
}

TEST(AsciiSpanTree, RendersNestingAndArgs) {
  obs::Observer observer;
  std::int64_t fake_now = 0;
  observer.set_clock([&fake_now] { return fake_now += 1000; });
  {
    obs::Span root(&observer, "root", "test");
    obs::Span child(&observer, "child", "test");
    child.arg("k", "v");
  }
  const std::string tree = obs::ascii_span_tree(observer);
  EXPECT_NE(tree.find("- root [test]"), std::string::npos) << tree;
  EXPECT_NE(tree.find("  - child [test]"), std::string::npos) << tree;
  EXPECT_NE(tree.find("{k=v}"), std::string::npos) << tree;
}

// ---------------------------------------------------------------------------
// Resilience negative paths
// ---------------------------------------------------------------------------

resilience::Policy faulty_policy() {
  resilience::Policy policy;
  StrategySpec spec;
  spec.placer = "greedy";
  spec.router = "sabre";
  policy.portfolio = {spec};
  policy.max_retries_per_rung = 1;
  policy.backoff.base_ms = 0.1;
  policy.backoff.cap_ms = 1.0;
  resilience::FaultSpec fault;
  fault.point = "throw-in-placer";
  fault.rung = 0;
  fault.probability = 1.0;
  policy.faults = {fault};
  return policy;
}

TEST(ResilienceObs, OutcomeFingerprintIdenticalWithAndWithoutObserver) {
  const Device device = devices::ibm_qx4();
  const Circuit circuit = workloads::ghz(4);

  resilience::Policy without = faulty_policy();
  const resilience::CompileOutcome baseline =
      resilience::ResilientCompiler(device, without).compile(circuit);

  obs::Observer observer;
  resilience::Policy with = faulty_policy();
  with.obs = &observer;
  const resilience::CompileOutcome observed =
      resilience::ResilientCompiler(device, with).compile(circuit);

  EXPECT_EQ(baseline.fingerprint(), observed.fingerprint())
      << "attaching an observer must not change compilation decisions";
  EXPECT_TRUE(observed.ok);
  // The injected placer crash must be visible in the metrics and as an
  // instant event in the trace.
  EXPECT_GE(observer.metrics().counter("resilience.faults_fired"), 1u);
  bool fault_event = false;
  for (const obs::SpanRecord& span : observer.trace().snapshot()) {
    if (span.name == "fault:throw-in-placer") fault_event = true;
  }
  EXPECT_TRUE(fault_event);
}

TEST(ResilienceObs, StallFaultShowsAsSpanExceedingRungDeadlineSlice) {
  const Device device = devices::ibm_qx4();
  const Circuit circuit = workloads::ghz(4);

  resilience::Policy policy = faulty_policy();
  policy.faults.clear();
  resilience::FaultSpec stall;
  stall.point = "stall-ms";
  stall.rung = 0;
  stall.probability = 1.0;
  stall.stall_ms = 120.0;
  policy.faults = {stall};
  policy.deadline_ms = 60.0;
  policy.max_retries_per_rung = 0;

  obs::Observer observer;
  policy.obs = &observer;
  const resilience::CompileOutcome outcome =
      resilience::ResilientCompiler(device, policy).compile(circuit);
  EXPECT_TRUE(outcome.ok);
  EXPECT_TRUE(outcome.degraded()) << outcome.report();

  // The rung-0 slice is deadline_ms * rung0_deadline_fraction = 36 ms; the
  // stalled attempt must overshoot it (the 120 ms sleep straddles the
  // armed deadline before CancelledError surfaces).
  const double slice_ms =
      policy.deadline_ms * policy.rung0_deadline_fraction;
  bool found_overrun = false;
  for (const obs::SpanRecord& span : observer.trace().snapshot()) {
    if (span.name != "attempt") continue;
    bool rung0 = false;
    for (const auto& [key, value] : span.args) {
      if (key == "rung" && value == "0") rung0 = true;
    }
    if (rung0 && span.duration_ms() > slice_ms) found_overrun = true;
  }
  EXPECT_TRUE(found_overrun)
      << "expected a rung-0 attempt span longer than the " << slice_ms
      << " ms slice\n"
      << obs::ascii_span_tree(observer);
}

}  // namespace
}  // namespace qmap
