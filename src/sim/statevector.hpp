// State-vector simulator.
//
// Stands in for the real quantum hardware (see DESIGN.md substitutions):
// mapping is a classical circuit transformation, so verifying that the
// mapped circuit implements the same unitary — up to the wire permutation
// introduced by routing SWAPs — is exactly the correctness criterion the
// paper's devices would enforce, minus noise.
//
// Basis convention: qubit 0 is the MOST significant bit of the state index,
// so |q0 q1 ... q_{n-1}> has index q0*2^{n-1} + ... + q_{n-1}. This matches
// the Gate::matrix() operand convention.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "ir/circuit.hpp"

namespace qmap {

class StateVector {
 public:
  /// Initializes |0...0> on `num_qubits` qubits (max 26).
  explicit StateVector(int num_qubits);

  [[nodiscard]] int num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] std::size_t dimension() const noexcept {
    return amplitudes_.size();
  }
  [[nodiscard]] const std::vector<Complex>& amplitudes() const noexcept {
    return amplitudes_;
  }
  [[nodiscard]] Complex amplitude(std::uint64_t basis_index) const;

  /// Resets to the computational basis state |basis_index>.
  void reset(std::uint64_t basis_index = 0);

  /// Replaces the state with a Haar-ish random unit vector (Gaussian
  /// components, normalized) — used by the equivalence checker.
  void randomize(Rng& rng);

  /// Applies a unitary gate. Throws SimulationError for Measure (use
  /// `measure`) ; Barrier is a no-op.
  void apply(const Gate& gate);

  /// Applies every unitary gate of `circuit`; measurements collapse using
  /// `rng` when provided, otherwise they throw.
  void run(const Circuit& circuit, Rng* rng = nullptr);

  /// Probability of reading 1 on `qubit`.
  [[nodiscard]] double probability_one(int qubit) const;

  /// Projective measurement of `qubit`; collapses and renormalizes.
  [[nodiscard]] int measure(int qubit, Rng& rng);

  /// Samples a full computational-basis outcome without collapsing.
  [[nodiscard]] std::uint64_t sample(Rng& rng) const;

  /// Permutes wire contents: the amplitude bit at position `from[i]` moves
  /// to position `to[i]`. `from`/`to` are parallel arrays covering all
  /// qubits exactly once each.
  void permute(const std::vector<int>& from, const std::vector<int>& to);

  /// |<this|other>|.
  [[nodiscard]] double fidelity(const StateVector& other) const;

  /// True when the states are equal up to global phase.
  [[nodiscard]] bool approx_equal(const StateVector& other,
                                  double tolerance = 1e-9) const;

  [[nodiscard]] double norm() const;
  [[nodiscard]] std::string to_string(double threshold = 1e-9) const;

 private:
  [[nodiscard]] int bit_shift(int qubit) const {
    return num_qubits_ - 1 - qubit;
  }
  void apply_matrix(const Matrix& m, const std::vector<int>& qubits);

  int num_qubits_ = 0;
  std::vector<Complex> amplitudes_;
};

/// Builds the full 2^n x 2^n unitary of a measurement-free circuit
/// (n <= 12). Throws SimulationError otherwise.
[[nodiscard]] Matrix circuit_unitary(const Circuit& circuit);

}  // namespace qmap
