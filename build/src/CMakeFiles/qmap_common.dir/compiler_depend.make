# Empty compiler generated dependencies file for qmap_common.
# This may be replaced when dependencies are built.
