// RouteIR byte-parity and structural tests.
//
// The data-oriented routing core (src/route/route_ir.hpp) re-implements
// the sabre/bridge/astar/qmap inner loops over flat SoA arrays and a CSR
// dependency DAG. The refactor's contract is *byte identity*: every
// RouteIR-backed router must produce exactly the CompilationResult the
// pointer-chasing implementation produced, for every device and seed.
//
// The parity matrix below pins that contract against golden fingerprint
// digests generated from the PRE-refactor routers and checked in under
// tests/golden/route_ir_fingerprints.txt. Do not regenerate them after a
// router change unless the change is an intentional behavior change:
//   QMAP_REGEN_GOLDEN=1 ./build/tests/test_route_ir
// then review and commit the diff.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/digest.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/compiler.hpp"
#include "ir/dag.hpp"
#include "route/route_ir.hpp"
#include "verify/reproducer.hpp"
#include "workloads/workloads.hpp"

namespace qmap {
namespace {

// --- Parity matrix: router x device x seed -> fingerprint digest ---

const char* const kParityRouters[] = {"sabre", "sabre+commute", "bridge",
                                      "astar", "qmap"};
const char* const kParityDevices[] = {"ibm_qx4", "ibm_qx5", "surface17"};
const std::uint64_t kParitySeeds[] = {1, 2, 3};

// One random workload per seed, wide enough to stress routing on the
// 5-qubit QX4 and identical across all devices.
Circuit parity_circuit(std::uint64_t seed) {
  Rng rng(Rng::derive_stream(0x50A17E, seed));
  return workloads::random_circuit(5, 60, rng, 0.5);
}

std::string parity_case_id(const std::string& router,
                           const std::string& device, std::uint64_t seed) {
  std::string id = router + "@" + device + "#" + std::to_string(seed);
  for (char& c : id) {
    if (c == '+') c = 'P';
  }
  return id;
}

std::string parity_digest(const std::string& router, const std::string& device,
                          std::uint64_t seed) {
  CompilerOptions options;
  // The annealing placer consumes the seed, so each seed exercises the
  // router from a genuinely different starting placement.
  options.placer = "annealing";
  options.router = router;
  options.seed = seed;
  const Circuit circuit = parity_circuit(seed);
  const CompilationResult result =
      Compiler(verify::device_by_name(device), options).compile(circuit);
  return content_digest(result.fingerprint());
}

std::string golden_fingerprint_path() {
  return std::string(QMAP_GOLDEN_DIR) + "/route_ir_fingerprints.txt";
}

std::map<std::string, std::string> load_golden_fingerprints() {
  std::map<std::string, std::string> out;
  std::ifstream in(golden_fingerprint_path());
  std::string id;
  std::string digest;
  while (in >> id >> digest) out[id] = digest;
  return out;
}

TEST(RouteIrParity, MatchesPreRefactorGoldenFingerprints) {
  std::map<std::string, std::string> actual;
  for (const char* router : kParityRouters) {
    for (const char* device : kParityDevices) {
      for (const std::uint64_t seed : kParitySeeds) {
        actual[parity_case_id(router, device, seed)] =
            parity_digest(router, device, seed);
      }
    }
  }

  const char* regen = std::getenv("QMAP_REGEN_GOLDEN");
  if (regen != nullptr && *regen != '\0') {
    std::ofstream out(golden_fingerprint_path(), std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << golden_fingerprint_path();
    for (const auto& [id, digest] : actual) out << id << ' ' << digest << '\n';
    GTEST_SKIP() << "regenerated " << golden_fingerprint_path();
  }

  const std::map<std::string, std::string> golden = load_golden_fingerprints();
  ASSERT_FALSE(golden.empty())
      << "no golden fingerprints at " << golden_fingerprint_path()
      << " (QMAP_REGEN_GOLDEN=1 generates them)";
  ASSERT_EQ(actual.size(), golden.size());
  for (const auto& [id, digest] : actual) {
    const auto it = golden.find(id);
    ASSERT_NE(it, golden.end()) << "missing golden for " << id;
    EXPECT_EQ(digest, it->second)
        << id << ": RouteIR-backed router output drifted from the "
        << "pre-refactor fingerprint";
  }
}

// --- CSR property tests: RouteIR vs DependencyDag on random circuits ---

Circuit property_circuit(std::uint64_t seed, int num_qubits = 6,
                         int num_gates = 80) {
  Rng rng(Rng::derive_stream(0xC5A11, seed));
  return workloads::random_circuit(num_qubits, num_gates, rng, 0.5);
}

void expect_csr_matches_dag(const Circuit& circuit, DagMode mode) {
  RouteArena arena;
  const ArenaScope scope(arena);
  const RouteIR ir = RouteIR::build(circuit, mode, arena);
  const DependencyDag dag(circuit, mode);
  ASSERT_EQ(ir.num_gates, dag.num_nodes());

  std::size_t total_edges = 0;
  for (std::uint32_t node = 0; node < ir.num_gates; ++node) {
    const std::vector<int>& succs = dag.successors(static_cast<int>(node));
    const std::uint32_t begin = ir.succ_offsets[node];
    const std::uint32_t end = ir.succ_offsets[node + 1];
    ASSERT_EQ(end - begin, succs.size()) << "successor count of " << node;
    for (std::size_t k = 0; k < succs.size(); ++k) {
      EXPECT_EQ(ir.succ[begin + k], static_cast<std::uint32_t>(succs[k]))
          << "successor " << k << " of node " << node;
    }
    EXPECT_EQ(ir.pred_count[node],
              dag.predecessors(static_cast<int>(node)).size())
        << "in-degree of " << node;
    total_edges += succs.size();
  }
  EXPECT_EQ(ir.num_edges(), total_edges);

  // Topological consistency: every edge points forward in program order.
  for (std::uint32_t node = 0; node < ir.num_gates; ++node) {
    for (std::uint32_t e = ir.succ_offsets[node]; e < ir.succ_offsets[node + 1];
         ++e) {
      EXPECT_GT(ir.succ[e], node) << "edge must point forward";
    }
  }

  // SoA records match the circuit, two-qubit index list is ascending.
  for (std::uint32_t node = 0; node < ir.num_gates; ++node) {
    const Gate& gate = circuit.gate(node);
    EXPECT_EQ(ir.gate_kind(node), gate.kind);
    EXPECT_EQ(ir.is_two_qubit(node), gate.is_two_qubit());
    if (!gate.qubits.empty()) {
      EXPECT_EQ(ir.q0[node], static_cast<std::uint32_t>(gate.qubits[0]));
    }
    if (gate.qubits.size() >= 2) {
      EXPECT_EQ(ir.q1[node], static_cast<std::uint32_t>(gate.qubits[1]));
    }
  }
  for (std::uint32_t k = 1; k < ir.num_two_qubit; ++k) {
    EXPECT_LT(ir.two_qubit[k - 1], ir.two_qubit[k]);
  }

  // Front layer == the in-degree-0 set, ascending, exactly dag.ready().
  FrontLayer front(ir, arena);
  ASSERT_EQ(front.ready_size(), dag.ready().size());
  for (std::uint32_t k = 0; k < front.ready_size(); ++k) {
    EXPECT_EQ(front.ready()[k], static_cast<std::uint32_t>(dag.ready()[k]));
    EXPECT_EQ(ir.pred_count[front.ready()[k]], 0u);
  }
}

TEST(RouteIrCsr, MatchesDependencyDagSequential) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    expect_csr_matches_dag(property_circuit(seed), DagMode::Sequential);
  }
}

TEST(RouteIrCsr, MatchesDependencyDagCommutation) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    expect_csr_matches_dag(property_circuit(seed), DagMode::Commutation);
  }
}

TEST(RouteIrCsr, HandlesEmptyAndSingleGateCircuits) {
  RouteArena arena;
  const ArenaScope scope(arena);
  const Circuit empty(3);
  const RouteIR ir_empty = RouteIR::build(empty, DagMode::Sequential, arena);
  EXPECT_EQ(ir_empty.num_gates, 0u);
  EXPECT_EQ(ir_empty.num_edges(), 0u);

  Circuit one(2);
  one.cx(0, 1);
  const RouteIR ir_one = RouteIR::build(one, DagMode::Sequential, arena);
  EXPECT_EQ(ir_one.num_gates, 1u);
  EXPECT_EQ(ir_one.num_edges(), 0u);
  EXPECT_EQ(ir_one.num_two_qubit, 1u);
  FrontLayer front(ir_one, arena);
  EXPECT_EQ(front.ready_size(), 1u);
}

// The scheduling walk: drive DependencyDag and FrontLayer through the same
// random schedule and demand identical ready lists at every step, in both
// dependency modes.
void expect_schedule_parity(const Circuit& circuit, DagMode mode,
                            std::uint64_t seed) {
  RouteArena arena;
  const ArenaScope scope(arena);
  const RouteIR ir = RouteIR::build(circuit, mode, arena);
  FrontLayer front(ir, arena);
  DependencyDag dag(circuit, mode);
  Rng rng(Rng::derive_stream(0xF207, seed));

  const auto expect_ready_equal = [&] {
    ASSERT_EQ(front.ready_size(), dag.ready().size());
    for (std::uint32_t k = 0; k < front.ready_size(); ++k) {
      ASSERT_EQ(front.ready()[k], static_cast<std::uint32_t>(dag.ready()[k]));
    }
    std::vector<std::uint32_t> two(ir.num_two_qubit);
    const std::uint32_t count = front.ready_two_qubit(two.data());
    const std::vector<int> dag_two = dag.ready_two_qubit();
    ASSERT_EQ(count, dag_two.size());
    for (std::uint32_t k = 0; k < count; ++k) {
      ASSERT_EQ(two[k], static_cast<std::uint32_t>(dag_two[k]));
    }
  };

  expect_ready_equal();
  while (!dag.all_scheduled()) {
    const std::size_t pick = rng.index(dag.ready().size());
    const int node = dag.ready()[pick];
    dag.mark_scheduled(node);
    front.mark_scheduled(static_cast<std::uint32_t>(node));
    expect_ready_equal();
    ASSERT_EQ(front.num_scheduled(), dag.num_scheduled());
  }
  EXPECT_TRUE(front.all_scheduled());

  // reset() restores the post-construction state.
  front.reset();
  dag.reset();
  expect_ready_equal();
}

TEST(RouteIrFront, TracksDependencyDagThroughRandomSchedules) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    expect_schedule_parity(property_circuit(seed), DagMode::Sequential, seed);
    expect_schedule_parity(property_circuit(seed), DagMode::Commutation, seed);
  }
}

TEST(RouteIrFront, MarkScheduledRejectsNonReadyNodes) {
  RouteArena arena;
  const ArenaScope scope(arena);
  Circuit circuit(2);
  circuit.h(0).cx(0, 1);
  const RouteIR ir = RouteIR::build(circuit, DagMode::Sequential, arena);
  FrontLayer front(ir, arena);
  // Node 1 depends on node 0: pending, not ready.
  EXPECT_THROW(front.mark_scheduled(1), CircuitError);
  front.mark_scheduled(0);
  EXPECT_THROW(front.mark_scheduled(0), CircuitError);  // already scheduled
  front.mark_scheduled(1);
  EXPECT_TRUE(front.all_scheduled());
}

// --- RouteArena ---

TEST(RouteArenaTest, MarkerRewindReusesBlocks) {
  RouteArena arena;
  void* first = nullptr;
  {
    const ArenaScope scope(arena);
    first = arena.alloc<std::uint64_t>(100);
  }
  std::size_t reserved = 0;
  for (int round = 0; round < 50; ++round) {
    const ArenaScope scope(arena);
    void* again = arena.alloc<std::uint64_t>(100);
    EXPECT_EQ(again, first) << "rewound arena must hand back the same block";
    (void)arena.alloc<double>(1000);
    if (round == 0) reserved = arena.bytes_reserved();
  }
  EXPECT_EQ(arena.bytes_reserved(), reserved)
      << "steady-state reuse must not grow the arena";
}

TEST(RouteArenaTest, AlignmentAndLargeBlocks) {
  RouteArena arena;
  const ArenaScope scope(arena);
  for (int i = 0; i < 32; ++i) {
    auto* b = arena.alloc<std::uint8_t>(3);
    auto* d = arena.alloc<double>(5);
    auto* u = arena.alloc<std::uint32_t>(7);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % alignof(std::uint8_t), 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(u) % alignof(std::uint32_t),
              0u);
    b[0] = 1;
    d[4] = 2.0;
    u[6] = 3;
  }
  // Larger than any default block: must still succeed (fresh block).
  auto* big = arena.alloc<std::uint64_t>(1 << 20);
  big[0] = 1;
  big[(1 << 20) - 1] = 2;
  EXPECT_GE(arena.bytes_reserved(), (std::size_t{1} << 23));
}

TEST(RouteArenaTest, NestedScopesRewindInLifoOrder) {
  RouteArena arena;
  const ArenaScope outer(arena);
  auto* keep = arena.alloc<int>(8);
  keep[0] = 42;
  void* inner_ptr = nullptr;
  {
    const ArenaScope inner(arena);
    inner_ptr = arena.alloc<int>(8);
  }
  // The inner allocation is reclaimed; the next alloc reuses its space and
  // the outer allocation is untouched.
  auto* again = arena.alloc<int>(8);
  EXPECT_EQ(static_cast<void*>(again), inner_ptr);
  EXPECT_EQ(keep[0], 42);
}

// --- Concurrent arena reuse: thread-local scratch arenas must make the
// same decisions no matter how many threads route at once. This is the
// test tier1.sh re-runs under TSan. ---

std::vector<std::string> thread_pool_digests(int num_threads) {
  // Each task is one full compile; tasks are striped over the threads so
  // every thread's scratch arena serves several different circuits
  // back-to-back (exercising marker rewind + block reuse between routes).
  const char* const routers[] = {"sabre", "sabre+commute", "bridge", "qmap",
                                 "astar"};
  constexpr int kTasks = 10;
  std::vector<std::string> digests(kTasks);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([t, num_threads, &routers, &digests] {
      for (int task = t; task < kTasks; task += num_threads) {
        digests[static_cast<std::size_t>(task)] = parity_digest(
            routers[task % 5], "ibm_qx5",
            static_cast<std::uint64_t>(task % 3) + 1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  return digests;
}

TEST(RouteIrThreads, FingerprintsIdenticalAcross1_2_8Threads) {
  const std::vector<std::string> serial = thread_pool_digests(1);
  EXPECT_EQ(thread_pool_digests(2), serial);
  EXPECT_EQ(thread_pool_digests(8), serial);
}

}  // namespace
}  // namespace qmap
