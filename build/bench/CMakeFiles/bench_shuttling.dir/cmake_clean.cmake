file(REMOVE_RECURSE
  "CMakeFiles/bench_shuttling.dir/bench_shuttling.cpp.o"
  "CMakeFiles/bench_shuttling.dir/bench_shuttling.cpp.o.d"
  "bench_shuttling"
  "bench_shuttling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shuttling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
