// Dependency DAG of a circuit, with the three-colour scheduling state
// described in Sec. VI-B of the paper:
//
//   "the dependency graph is a directed, acyclic graph with nodes
//    representing the quantum gates and edges indicating dependencies
//    [...] Nodes can have one of two colors, differentiating the gates
//    already scheduled from those that need to be scheduled. An additional
//    color may mark the gates that can be scheduled next."
//
// Nodes are gate indices into the originating circuit. An edge u -> v means
// gate v depends on gate u (they share a qubit and u precedes v, with no
// other gate on that qubit in between).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "ir/circuit.hpp"

namespace qmap {

enum class NodeColor {
  Pending,    // has unscheduled predecessors
  Ready,      // all predecessors scheduled; can be scheduled next
  Scheduled,  // already scheduled
};

/// How dependencies are derived from the gate list.
enum class DagMode {
  /// Strict per-qubit program order: a gate depends on the previous gate
  /// touching any of its qubits.
  Sequential,
  /// Gate-commutation-aware ([58], cited in Sec. IV): gates that provably
  /// commute on every shared qubit impose no ordering. E.g. two CNOTs
  /// sharing their control, two CNOTs sharing their target, diagonal gates
  /// (Rz/T/CZ/CPhase) on a CNOT control, and the QFT's controlled-phase
  /// ladders are all unordered, exposing extra freedom to the routers.
  Commutation,
};

/// Per-qubit action class used for the commutation analysis.
enum class QubitAction {
  Diagonal,  // Z-basis diagonal on this qubit (incl. acting as a control)
  AntiDiagonalX,  // X-basis diagonal (X, Rx, SX, CX target)
  Other,     // orders with everything
};

/// Classifies how `gate` acts on its operand `qubit` (which must be one of
/// the gate's operands).
[[nodiscard]] QubitAction qubit_action(const Gate& gate, int qubit);

/// True when the two gates provably commute (same non-Other action class
/// on every shared qubit). Conservative: false negatives allowed, false
/// positives not.
[[nodiscard]] bool gates_commute(const Gate& a, const Gate& b);

class DependencyDag {
 public:
  /// Builds the DAG for `circuit`. The circuit must outlive the DAG.
  explicit DependencyDag(const Circuit& circuit,
                         DagMode mode = DagMode::Sequential);

  [[nodiscard]] const Circuit& circuit() const noexcept { return *circuit_; }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return preds_.size();
  }
  [[nodiscard]] const std::vector<int>& predecessors(int node) const {
    return preds_[static_cast<std::size_t>(node)];
  }
  [[nodiscard]] const std::vector<int>& successors(int node) const {
    return succs_[static_cast<std::size_t>(node)];
  }

  // --- Scheduling state (mutable part of the execution snapshot) ---

  [[nodiscard]] NodeColor color(int node) const {
    return colors_[static_cast<std::size_t>(node)];
  }
  /// Gate indices currently Ready, in ascending order.
  [[nodiscard]] const std::vector<int>& ready() const noexcept {
    return ready_;
  }
  /// Subset of ready() that are two-qubit gates — the routing "front layer".
  [[nodiscard]] std::vector<int> ready_two_qubit() const;
  /// Marks `node` Scheduled; newly enabled successors become Ready.
  /// Throws CircuitError unless the node is currently Ready.
  void mark_scheduled(int node);
  [[nodiscard]] bool all_scheduled() const noexcept {
    return num_scheduled_ == num_nodes();
  }
  [[nodiscard]] std::size_t num_scheduled() const noexcept {
    return num_scheduled_;
  }
  /// Resets every node to Pending/Ready as after construction.
  void reset();

  // --- Structural queries ---

  /// Nodes in a topological order (program order is one; this returns it).
  [[nodiscard]] std::vector<int> topological_order() const;

  /// Length of the weighted critical path. `weight(i)` is the duration of
  /// gate i; unit weights give the conventional circuit depth.
  [[nodiscard]] double critical_path(
      const std::function<double(int)>& weight) const;

  /// Conventional depth (unit gate durations, barriers weightless).
  [[nodiscard]] int depth() const;

 private:
  const Circuit* circuit_;
  std::vector<std::vector<int>> preds_;
  std::vector<std::vector<int>> succs_;
  std::vector<NodeColor> colors_;
  std::vector<int> unscheduled_pred_count_;
  std::vector<int> ready_;
  std::size_t num_scheduled_ = 0;
};

}  // namespace qmap
