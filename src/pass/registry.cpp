#include "pass/registry.hpp"

#include <initializer_list>
#include <utility>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "noise/reliability.hpp"
#include "pass/passes.hpp"
#include "route/astar_layer.hpp"
#include "route/bidirectional_placer.hpp"
#include "route/bridge.hpp"
#include "route/exact.hpp"
#include "route/naive.hpp"
#include "route/qmap_router.hpp"
#include "route/sabre.hpp"
#include "route/shuttle.hpp"

namespace qmap {

const std::vector<std::string>& known_placers() {
  static const std::vector<std::string> names = {
      "identity",    "greedy",      "exhaustive",
      "annealing",   "reliability", "bidirectional"};
  return names;
}

const std::vector<std::string>& known_routers() {
  static const std::vector<std::string> names = {
      "naive", "sabre", "sabre+commute", "bridge",      "astar",
      "exact", "qmap",  "reliability",   "shuttle"};
  return names;
}

std::unique_ptr<Placer> make_placer(const std::string& name,
                                    std::uint64_t seed) {
  if (name == "identity") return std::make_unique<IdentityPlacer>();
  if (name == "greedy") return std::make_unique<GreedyPlacer>();
  if (name == "exhaustive") return std::make_unique<ExhaustivePlacer>();
  if (name == "annealing") return std::make_unique<AnnealingPlacer>(seed);
  if (name == "reliability") return std::make_unique<ReliabilityPlacer>();
  if (name == "bidirectional") return std::make_unique<BidirectionalPlacer>();
  throw MappingError("unknown placer: '" + name + "' (valid: " +
                     join(known_placers(), ", ") + ")");
}

std::unique_ptr<Router> make_router(const std::string& name) {
  if (name == "naive") return std::make_unique<NaiveRouter>();
  if (name == "sabre") return std::make_unique<SabreRouter>();
  if (name == "sabre+commute") {
    SabreRouter::Options options;
    options.use_commutation = true;
    return std::make_unique<SabreRouter>(options);
  }
  if (name == "bridge") return std::make_unique<BridgeRouter>();
  if (name == "astar") return std::make_unique<AStarLayerRouter>();
  if (name == "exact") return std::make_unique<ExactRouter>();
  if (name == "qmap") return std::make_unique<QmapRouter>();
  if (name == "reliability") return std::make_unique<ReliabilityRouter>();
  if (name == "shuttle") return std::make_unique<ShuttleRouter>();
  throw MappingError("unknown router: '" + name + "' (valid: " +
                     join(known_routers(), ", ") + ")");
}

const std::vector<std::string>& known_passes() {
  static const std::vector<std::string> names = {
      "decompose", "placer",    "router",
      "token_swap_finisher",    "postroute", "schedule"};
  return names;
}

namespace {

// Aliases keep historical spellings (and the natural verb forms) working
// in pipeline JSON; stage hooks always receive the canonical Pass::name().
const std::vector<std::pair<std::string, std::string>>& pass_aliases() {
  static const std::vector<std::pair<std::string, std::string>> aliases = {
      {"lower", "decompose"},  {"place", "placer"},
      {"route", "router"},     {"post-route", "postroute"},
      {"scheduler", "schedule"},
      {"token-swap", "token_swap_finisher"}};
  return aliases;
}

std::string pass_names_for_error() {
  std::string out = join(known_passes(), ", ");
  out += "; aliases:";
  for (const auto& [alias, canonical] : pass_aliases()) {
    out += " " + alias + "=" + canonical;
  }
  return out;
}

/// Rejects option keys outside `valid`, so a typo in pipeline JSON fails
/// with the pass name and the accepted keys instead of being ignored.
void check_option_keys(const Json& options, const std::string& pass,
                       std::initializer_list<const char*> valid) {
  if (options.is_null()) return;
  if (!options.is_object()) {
    throw MappingError("pass '" + pass + "': options must be a JSON object");
  }
  for (const auto& [key, value] : options.as_object()) {
    bool known = false;
    for (const char* name : valid) {
      if (key == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::string names;
      for (const char* name : valid) {
        if (!names.empty()) names += ", ";
        names += name;
      }
      if (names.empty()) names = "none";
      throw MappingError("pass '" + pass + "': unknown option '" + key +
                         "' (valid: " + names + ")");
    }
  }
}

bool bool_option(const Json& options, const char* key, bool fallback) {
  if (options.is_null()) return fallback;
  const Json* value = options.find(key);
  return value ? value->as_bool() : fallback;
}

std::string string_option(const Json& options, const char* key,
                          const char* fallback) {
  if (options.is_null()) return fallback;
  const Json* value = options.find(key);
  return value ? value->as_string() : fallback;
}

}  // namespace

std::string canonical_pass_name(const std::string& name) {
  for (const std::string& canonical : known_passes()) {
    if (name == canonical) return canonical;
  }
  for (const auto& [alias, canonical] : pass_aliases()) {
    if (name == alias) return canonical;
  }
  throw MappingError("unknown pass: '" + name +
                     "' (valid: " + pass_names_for_error() + ")");
}

Json default_pass_options(const std::string& name) {
  const std::string canonical = canonical_pass_name(name);
  Json out;
  if (canonical == "decompose") {
    out["lower_to_native"] = Json(true);
  } else if (canonical == "placer") {
    out["algorithm"] = Json(std::string("greedy"));
  } else if (canonical == "router") {
    out["algorithm"] = Json(std::string("sabre"));
  } else if (canonical == "postroute") {
    out["peephole"] = Json(true);
    out["lower_to_native"] = Json(true);
  } else if (canonical == "schedule") {
    out["use_control_constraints"] = Json(true);
  }
  // token_swap_finisher takes no options; its default stays null.
  return out;
}

std::unique_ptr<Pass> make_pass(const std::string& name, const Json& options) {
  const std::string canonical = canonical_pass_name(name);
  if (canonical == "decompose") {
    check_option_keys(options, canonical, {"lower_to_native"});
    return std::make_unique<DecomposePass>(
        bool_option(options, "lower_to_native", true));
  }
  if (canonical == "placer") {
    check_option_keys(options, canonical, {"algorithm"});
    return std::make_unique<PlacePass>(
        string_option(options, "algorithm", "greedy"));
  }
  if (canonical == "router") {
    check_option_keys(options, canonical, {"algorithm"});
    return std::make_unique<RoutePass>(
        string_option(options, "algorithm", "sabre"));
  }
  if (canonical == "postroute") {
    check_option_keys(options, canonical, {"peephole", "lower_to_native"});
    return std::make_unique<PostRoutePass>(
        bool_option(options, "peephole", true),
        bool_option(options, "lower_to_native", true));
  }
  if (canonical == "token_swap_finisher") {
    check_option_keys(options, canonical, {});
    return std::make_unique<TokenSwapFinisherPass>();
  }
  // canonical_pass_name() already rejected everything else.
  check_option_keys(options, canonical, {"use_control_constraints"});
  return std::make_unique<SchedulePass>(
      bool_option(options, "use_control_constraints", true));
}

}  // namespace qmap
