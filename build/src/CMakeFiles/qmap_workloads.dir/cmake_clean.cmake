file(REMOVE_RECURSE
  "CMakeFiles/qmap_workloads.dir/workloads/workloads.cpp.o"
  "CMakeFiles/qmap_workloads.dir/workloads/workloads.cpp.o.d"
  "libqmap_workloads.a"
  "libqmap_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qmap_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
