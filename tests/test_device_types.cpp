// Sec. VI device-type feature tests: trapped-ion two-qubit parallelism
// limits and restricted-measurability devices with measurement relocation.
#include <gtest/gtest.h>

#include "arch/builtin.hpp"
#include "arch/config.hpp"
#include "core/compiler.hpp"
#include "route/measure_relocation.hpp"
#include "schedule/constraints.hpp"
#include "schedule/schedulers.hpp"
#include "sim/equivalence.hpp"
#include "workloads/workloads.hpp"

namespace qmap {
namespace {

TEST(TrappedIon, DeviceShape) {
  const Device ion = devices::trapped_ion(7);
  EXPECT_EQ(ion.coupling().diameter(), 1);  // all-to-all
  EXPECT_EQ(ion.max_parallel_two_qubit(), 1);
  EXPECT_TRUE(ion.has_control_constraints());
  EXPECT_EQ(ion.durations().two_qubit_cycles, 10);
}

TEST(TrappedIon, ConfigRoundTrip) {
  const Device decoded =
      device_from_json(device_to_json(devices::trapped_ion(5)));
  EXPECT_EQ(decoded.max_parallel_two_qubit(), 1);
}

TEST(TwoQubitParallelism, ConstraintBlocksConcurrentPairs) {
  const Device ion = devices::trapped_ion(4);
  TwoQubitParallelismConstraint constraint(1);
  const ScheduledGate running{make_gate(GateKind::CX, {0, 1}), 0, 10};
  const ScheduledGate overlapping{make_gate(GateKind::CX, {2, 3}), 5, 10};
  EXPECT_FALSE(constraint.compatible(overlapping, {running}, ion));
  const ScheduledGate after{make_gate(GateKind::CX, {2, 3}), 10, 10};
  EXPECT_TRUE(constraint.compatible(after, {running}, ion));
  const ScheduledGate single{make_gate(GateKind::X, {2}), 5, 1};
  EXPECT_TRUE(constraint.compatible(single, {running}, ion));
}

TEST(TwoQubitParallelism, HigherLimitsAllowMoreConcurrency) {
  const Device ion = devices::trapped_ion(6);
  TwoQubitParallelismConstraint two(2);
  const ScheduledGate a{make_gate(GateKind::CX, {0, 1}), 0, 10};
  const ScheduledGate b{make_gate(GateKind::CX, {2, 3}), 0, 10};
  const ScheduledGate c{make_gate(GateKind::CX, {4, 5}), 0, 10};
  EXPECT_TRUE(two.compatible(b, {a}, ion));
  EXPECT_FALSE(two.compatible(c, {a, b}, ion));
}

TEST(TrappedIon, SchedulerSerializesTwoQubitGates) {
  const Device ion = devices::trapped_ion(6);
  Circuit c(6);
  c.cx(0, 1).cx(2, 3).cx(4, 5);  // fully parallel on unconstrained devices
  const Schedule schedule = schedule_for_device(c, ion);
  // One gate at a time: total = 3 * 10 cycles.
  EXPECT_EQ(schedule.total_cycles(), 30);
  const Schedule unconstrained = schedule_asap(c, ion);
  EXPECT_EQ(unconstrained.total_cycles(), 10);
}

TEST(TrappedIon, ZeroSwapsThroughCompiler) {
  const Compiler compiler(devices::trapped_ion(6));
  const CompilationResult result = compiler.compile(workloads::qft(6));
  EXPECT_EQ(result.routing.added_swaps, 0u);  // all-to-all: no routing
  EXPECT_TRUE(Compiler::verify(result));
  // But serialization shows up in the schedule.
  EXPECT_GE(result.scheduled_cycles, result.baseline_cycles);
}

TEST(Measurable, MaskValidation) {
  Device device = devices::linear(3);
  EXPECT_TRUE(device.measurable(0));  // default: everything measurable
  EXPECT_THROW(device.set_measurable({true, false}), DeviceError);
  EXPECT_THROW(device.set_measurable({false, false, false}), DeviceError);
  device.set_measurable({false, true, false});
  EXPECT_FALSE(device.measurable(0));
  EXPECT_TRUE(device.measurable(1));
  EXPECT_FALSE(device.accepts(make_measure(0, 0)));
  EXPECT_TRUE(device.accepts(make_measure(1, 1)));
}

TEST(Measurable, ConfigRoundTrip) {
  Device device = devices::linear(3);
  device.set_measurable({false, true, true});
  const Device decoded = device_from_json(device_to_json(device));
  EXPECT_FALSE(decoded.measurable(0));
  EXPECT_TRUE(decoded.measurable(2));
}

TEST(Relocation, NoOpWhenEverythingMeasurable) {
  const Device line = devices::linear(3);
  Circuit c(3);
  c.h(0).measure_all();
  Placement placement = Placement::identity(3, 3);
  const Circuit out = relocate_measurements(c, line, placement);
  EXPECT_EQ(out.size(), c.size());
}

TEST(Relocation, MovesStateToNearestMeasurableQubit) {
  Device line = devices::linear(4);
  line.set_measurable({false, false, false, true});
  Circuit c(4);
  c.x(0).measure(0, 0);
  Placement placement = Placement::identity(4, 4);
  const Circuit out = relocate_measurements(c, line, placement);
  // 3 SWAPs to walk Q0 -> Q3, then measure Q3.
  std::size_t swaps = 0;
  int measured = -1;
  for (const Gate& gate : out) {
    if (gate.kind == GateKind::SWAP) ++swaps;
    if (gate.kind == GateKind::Measure) measured = gate.qubits[0];
  }
  EXPECT_EQ(swaps, 3u);
  EXPECT_EQ(measured, 3);
  // Placement tracked the relocation: wire 0 now sits on Q3.
  EXPECT_EQ(placement.phys_of_wire(0), 3);
}

TEST(Relocation, MultipleMeasurementsGetDistinctTargets) {
  Device line = devices::linear(4);
  line.set_measurable({false, false, true, true});
  Circuit c(4);
  c.h(0).h(1).measure(0, 0).measure(1, 1);
  Placement placement = Placement::identity(4, 4);
  const Circuit out = relocate_measurements(c, line, placement);
  std::vector<int> targets;
  for (const Gate& gate : out) {
    if (gate.kind == GateKind::Measure) targets.push_back(gate.qubits[0]);
  }
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_NE(targets[0], targets[1]);
  for (const int t : targets) EXPECT_TRUE(line.measurable(t));
}

TEST(Relocation, DefersTerminalMeasurementsPastLaterGates) {
  // A measurement with no later gate on its qubit commutes to the end, so
  // unitaries on *other* qubits after it are fine.
  Device line = devices::linear(3);
  line.set_measurable({false, false, true});
  Circuit c(3);
  c.measure(0, 0).h(1);
  Placement placement = Placement::identity(3, 3);
  const Circuit out = relocate_measurements(c, line, placement);
  EXPECT_EQ(out.gate(0).kind, GateKind::H);  // measure deferred to the end
  EXPECT_EQ(out.gates().back().kind, GateKind::Measure);
  EXPECT_EQ(out.gates().back().qubits[0], 2);
}

TEST(Relocation, RejectsTrueMidCircuitMeasurementOnUnmeasurableQubit) {
  // Here q0 is used again after being measured: the measurement cannot be
  // deferred, and relocating it mid-circuit is unsupported.
  Device line = devices::linear(3);
  line.set_measurable({false, false, true});
  Circuit c(3);
  c.measure(0, 0).h(0);
  Placement placement = Placement::identity(3, 3);
  EXPECT_THROW((void)relocate_measurements(c, line, placement), MappingError);
}

TEST(Relocation, EndToEndEquivalenceThroughCompiler) {
  // Surface-17 where only the paper's feedline-0 qubits are measurable.
  Device device = devices::surface17();
  std::vector<bool> mask(17, false);
  for (const int q : {0, 2, 3, 6, 9, 12}) mask[static_cast<std::size_t>(q)] = true;
  device.set_measurable(std::move(mask));
  Circuit circuit = workloads::ghz(4);
  circuit.measure_all();
  const Compiler compiler(device);
  const CompilationResult result = compiler.compile(circuit);
  for (const Gate& gate : result.final_circuit) {
    if (gate.kind == GateKind::Measure) {
      EXPECT_TRUE(device.measurable(gate.qubits[0]))
          << "measurement on non-measurable Q" << gate.qubits[0];
    }
  }
  EXPECT_TRUE(Compiler::verify(result));
}

}  // namespace
}  // namespace qmap
