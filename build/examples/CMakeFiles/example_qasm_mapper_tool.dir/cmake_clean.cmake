file(REMOVE_RECURSE
  "CMakeFiles/example_qasm_mapper_tool.dir/qasm_mapper_tool.cpp.o"
  "CMakeFiles/example_qasm_mapper_tool.dir/qasm_mapper_tool.cpp.o.d"
  "example_qasm_mapper_tool"
  "example_qasm_mapper_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_qasm_mapper_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
