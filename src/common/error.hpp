// Error types shared across the library.
//
// All qmap subsystems report unrecoverable misuse or malformed input by
// throwing an exception derived from qmap::Error. Each subsystem has its
// own subclass so callers can discriminate without string matching.
#pragma once

#include <stdexcept>
#include <string>

namespace qmap {

/// Base class of all exceptions thrown by qmaplib.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed textual input (QASM, cQASM, JSON device configs).
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line = 0, int column = 0)
      : Error(format(what, line, column)), line_(line), column_(column) {}

  [[nodiscard]] int line() const noexcept { return line_; }
  [[nodiscard]] int column() const noexcept { return column_; }

 private:
  static std::string format(const std::string& what, int line, int column) {
    if (line <= 0) return what;
    return what + " (line " + std::to_string(line) + ", column " +
           std::to_string(column) + ")";
  }

  int line_ = 0;
  int column_ = 0;
};

/// Violation of a circuit-level invariant (qubit out of range, duplicate
/// operands, malformed gate arity, ...).
class CircuitError : public Error {
 public:
  using Error::Error;
};

/// Violation of a device-model invariant (unknown qubit, bad edge, ...).
class DeviceError : public Error {
 public:
  using Error::Error;
};

/// A mapping/routing/scheduling pass was asked to do something impossible
/// (disconnected device, circuit larger than device, ...).
class MappingError : public Error {
 public:
  using Error::Error;
};

/// Simulation-layer failures (too many qubits for a state vector, ...).
class SimulationError : public Error {
 public:
  using Error::Error;
};

}  // namespace qmap
