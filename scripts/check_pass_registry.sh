#!/usr/bin/env bash
# Lint: every pass name registered in src/pass/registry.cpp
# (known_passes()) must appear in DESIGN.md's "Pass architecture" pass
# table, so the registry and the documentation cannot drift apart.
#
# Usage: scripts/check_pass_registry.sh
set -euo pipefail
cd "$(dirname "$0")/.."

REGISTRY=src/pass/registry.cpp
DESIGN=DESIGN.md

# Pull the quoted names out of the known_passes() initializer: everything
# between `known_passes() {` and the closing `}` of its static vector.
names=$(awk '/known_passes\(\)/,/^}/' "${REGISTRY}" \
  | grep -o '"[a-z_-]*"' | tr -d '"')

if [ -z "${names}" ]; then
  echo "check_pass_registry: failed to extract pass names from ${REGISTRY}" >&2
  exit 1
fi

# The documented table rows look like `| \`placer\` | ... |`.
missing=0
for name in ${names}; do
  if ! grep -Eq "^\|\s*\`${name}\`" "${DESIGN}"; then
    echo "check_pass_registry: pass '${name}' is registered in ${REGISTRY}" \
         "but missing from the pass table in ${DESIGN}" >&2
    missing=1
  fi
done

if [ "${missing}" -ne 0 ]; then
  exit 1
fi
echo "check_pass_registry: ${REGISTRY} and ${DESIGN} agree ($(echo "${names}" | wc -w) passes)"
