// RouteIR: the data-oriented routing core.
//
// The heuristic routers (sabre, bridge, qmap, astar_layer) spend their
// whole budget in tiny inner loops — front-layer scans, per-edge swap
// scoring, ready-list maintenance — and the pointer-heavy DependencyDag /
// Placement structures made every iteration chase vector<vector<int>>
// cells and copy whole placements per candidate SWAP. RouteIR is the flat
// replacement: one arena allocation per route() call holds
//
//   * SoA gate records: kind / flags / q0 / q1 in parallel arrays,
//   * the dependency DAG in CSR form (offsets + edges, two flat arrays),
//   * an in-place front-layer worklist (sorted ready list + in-degrees),
//   * a flat program->physical mirror kept in lockstep with the
//     RoutingEmitter's Placement,
//
// and distance queries read straight out of the shared ArchArtifacts
// row-major matrix (or a one-off flat copy of the device's warmed cache
// when no artifacts are attached).
//
// Fidelity contract: RouteIR is a *representation* change only. The CSR
// DAG reproduces DependencyDag's edge discovery (ir/dag.cpp) exactly —
// same Sequential last-writer rule, same commutation-aware rule, same
// dedup, same ascending successor order — and FrontLayer reproduces the
// sorted-ready/upper-bound-insert bookkeeping of mark_scheduled. Routers
// ported onto RouteIR therefore make byte-identical decisions; parity is
// pinned by tests/test_route_ir.cpp against pre-refactor golden
// fingerprints. When changing anything here, keep DESIGN.md §11 in sync.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "ir/circuit.hpp"
#include "ir/dag.hpp"
#include "route/router.hpp"

namespace qmap {

/// Chunked bump allocator backing one route() call. Allocation is a
/// pointer bump; deallocation only happens wholesale by rewinding to a
/// marker (ArenaScope). Blocks are retained across rewinds, so a reused
/// arena (see scratch()) serves subsequent routes without touching malloc.
class RouteArena {
 public:
  /// Rewind point: everything allocated after mark() is reclaimed by
  /// release(). Markers must be released in LIFO order (use ArenaScope).
  struct Marker {
    std::size_t block = 0;
    std::size_t used = 0;
  };

  RouteArena() = default;
  RouteArena(const RouteArena&) = delete;
  RouteArena& operator=(const RouteArena&) = delete;

  /// `count` default-initialized (i.e. uninitialized) Ts. Only trivially
  /// destructible types: the arena never runs destructors.
  template <typename T>
  [[nodiscard]] T* alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "RouteArena never runs destructors");
    return static_cast<T*>(raw_alloc(count * sizeof(T), alignof(T)));
  }

  [[nodiscard]] Marker mark() const noexcept {
    return Marker{active_, active_ < blocks_.size() ? blocks_[active_].used
                                                    : 0};
  }
  void release(const Marker& marker) noexcept {
    active_ = marker.block;
    if (active_ < blocks_.size()) blocks_[active_].used = marker.used;
  }

  /// Total block capacity held (allocation high-water mark, for tests).
  [[nodiscard]] std::size_t bytes_reserved() const noexcept;

  /// The calling thread's reusable arena. Each route() call brackets its
  /// use with an ArenaScope, so concurrent routes on different threads
  /// never share blocks and repeated routes on one thread reuse them.
  [[nodiscard]] static RouteArena& scratch();

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  void* raw_alloc(std::size_t bytes, std::size_t align) {
    if (active_ < blocks_.size()) {
      Block& block = blocks_[active_];
      const std::size_t at = (block.used + (align - 1)) & ~(align - 1);
      if (at + bytes <= block.size) {
        block.used = at + bytes;
        return block.data.get() + at;
      }
    }
    return slow_alloc(bytes, align);
  }
  void* slow_alloc(std::size_t bytes, std::size_t align);

  std::vector<Block> blocks_;
  std::size_t active_ = 0;
};

/// RAII marker scope: rewinds the arena on exit, exception-safe.
class ArenaScope {
 public:
  explicit ArenaScope(RouteArena& arena)
      : arena_(&arena), marker_(arena.mark()) {}
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;
  ~ArenaScope() { arena_->release(marker_); }

 private:
  RouteArena* arena_;
  RouteArena::Marker marker_;
};

/// The flat routing IR of one circuit. All pointers live in the arena the
/// IR was built from and stay valid until that arena is rewound past the
/// build's marker; the struct itself is a cheap value (pointers + sizes).
struct RouteIR {
  static constexpr std::uint32_t kNoQubit = 0xFFFFFFFFu;
  static constexpr std::uint8_t kFlagTwoQubit = 1u;

  std::uint32_t num_gates = 0;
  std::uint32_t num_program_qubits = 0;

  // --- SoA gate records (index = gate index in the source circuit) ---
  const std::uint8_t* kind = nullptr;   // static_cast<uint8_t>(GateKind)
  const std::uint8_t* flags = nullptr;  // kFlag* bits
  const std::uint32_t* q0 = nullptr;    // first operand (kNoQubit if none)
  const std::uint32_t* q1 = nullptr;    // second operand (kNoQubit if none)

  // --- Dependency DAG, CSR form ---
  // Successors of gate i: succ[succ_offsets[i] .. succ_offsets[i+1]),
  // ascending. pred_count[i] is the in-degree (the CSR transpose's row
  // lengths); the front layer only needs the counts, not the edges.
  const std::uint32_t* succ_offsets = nullptr;  // num_gates + 1 entries
  const std::uint32_t* succ = nullptr;
  const std::uint32_t* pred_count = nullptr;

  // --- Ascending indices of the two-qubit gates ---
  const std::uint32_t* two_qubit = nullptr;
  std::uint32_t num_two_qubit = 0;

  [[nodiscard]] bool is_two_qubit(std::uint32_t node) const {
    return (flags[node] & kFlagTwoQubit) != 0;
  }
  [[nodiscard]] GateKind gate_kind(std::uint32_t node) const {
    return static_cast<GateKind>(kind[node]);
  }
  [[nodiscard]] std::uint32_t num_edges() const {
    return succ_offsets[num_gates];
  }

  /// Builds the IR for `circuit` into `arena`, reproducing DependencyDag's
  /// edge discovery for `mode` (see the fidelity contract above).
  [[nodiscard]] static RouteIR build(const Circuit& circuit, DagMode mode,
                                     RouteArena& arena);
};

/// The three-colour scheduling worklist over a RouteIR, semantically equal
/// to DependencyDag's ready-list: ready() is sorted ascending, newly
/// enabled successors are inserted at their sorted position, and
/// mark_scheduled throws CircuitError unless the node is currently ready.
class FrontLayer {
 public:
  FrontLayer() = default;
  FrontLayer(const RouteIR& ir, RouteArena& arena) { init(ir, arena); }

  void init(const RouteIR& ir, RouteArena& arena);
  /// Back to the post-construction state (everything pending/ready).
  void reset();

  [[nodiscard]] const std::uint32_t* ready() const noexcept { return ready_; }
  [[nodiscard]] std::uint32_t ready_size() const noexcept {
    return ready_size_;
  }
  [[nodiscard]] bool scheduled(std::uint32_t node) const {
    return scheduled_[node] != 0;
  }
  [[nodiscard]] bool all_scheduled() const noexcept {
    return num_scheduled_ == ir_->num_gates;
  }
  [[nodiscard]] std::uint32_t num_scheduled() const noexcept {
    return num_scheduled_;
  }

  /// Marks `node` scheduled; newly enabled successors become ready.
  /// Throws CircuitError unless the node is currently ready.
  void mark_scheduled(std::uint32_t node);

  /// Writes the ready two-qubit nodes (ascending) into `out` (capacity
  /// must be >= ir.num_two_qubit) and returns the count.
  std::uint32_t ready_two_qubit(std::uint32_t* out) const;

 private:
  const RouteIR* ir_ = nullptr;
  std::uint32_t* indegree_ = nullptr;
  std::uint8_t* scheduled_ = nullptr;
  std::uint32_t* ready_ = nullptr;
  std::uint32_t ready_size_ = 0;
  std::uint32_t num_scheduled_ = 0;
};

/// Per-route working state shared by the sabre-family routers (sabre,
/// bridge, qmap): the IR + front layer, a flat distance matrix, a flat
/// program->physical mirror of the emitter's Placement, and the scratch
/// buffers the inner loops write into. Everything is arena-allocated; the
/// caller brackets the core's lifetime with an ArenaScope.
class RouteCore {
 public:
  RouteCore(const Circuit& circuit, const Device& device,
            const ArchArtifacts* artifacts, DagMode mode,
            const Placement& initial, RouteArena& arena);

  RouteIR ir;
  FrontLayer front;

  // Refreshed by refresh_front(): the ready two-qubit gates, ascending.
  const std::uint32_t* front_gates = nullptr;
  std::uint32_t front_size = 0;

  [[nodiscard]] int dist(int a, int b) const {
    return dist_[static_cast<std::size_t>(a) *
                     static_cast<std::size_t>(num_phys_) +
                 static_cast<std::size_t>(b)];
  }
  [[nodiscard]] int phys_of(std::uint32_t program_qubit) const {
    return phys_of_[program_qubit];
  }
  /// Distance of two-qubit gate `node` under the current placement.
  [[nodiscard]] int gate_dist(std::uint32_t node) const {
    return dist(phys_of_[ir.q0[node]], phys_of_[ir.q1[node]]);
  }
  /// Same, under the placement with physical qubits (ea, eb) swapped —
  /// the per-candidate Placement copy of the old loops, reduced to two
  /// endpoint substitutions.
  [[nodiscard]] int gate_dist_swapped(std::uint32_t node, int ea,
                                      int eb) const {
    int pa = phys_of_[ir.q0[node]];
    int pb = phys_of_[ir.q1[node]];
    if (pa == ea) pa = eb;
    else if (pa == eb) pa = ea;
    if (pb == ea) pb = eb;
    else if (pb == eb) pb = ea;
    return dist(pa, pb);
  }
  /// True when `node` can run under the current placement (non-2q gates
  /// always can; 2q gates need adjacent operands).
  [[nodiscard]] bool executable(std::uint32_t node) const {
    if (!ir.is_two_qubit(node)) return true;
    return gate_dist(node) == 1;
  }

  /// Physical endpoints of two-qubit gates `nodes` under the current
  /// placement, for the edge-scoring loops: hoists the q0/q1/phys_of
  /// loads out of the per-candidate-SWAP scan (they are invariant across
  /// candidates), leaving dist_pair_swapped with register arithmetic plus
  /// one distance load per (edge, gate) trial.
  void collect_endpoints(const std::uint32_t* nodes, std::uint32_t count,
                         std::int32_t* pa, std::int32_t* pb) const {
    for (std::uint32_t k = 0; k < count; ++k) {
      pa[k] = phys_of_[ir.q0[nodes[k]]];
      pb[k] = phys_of_[ir.q1[nodes[k]]];
    }
  }
  /// gate_dist for a precollected endpoint pair.
  [[nodiscard]] int dist_pair(std::int32_t pa, std::int32_t pb) const {
    return dist(pa, pb);
  }
  /// gate_dist_swapped for a precollected endpoint pair.
  [[nodiscard]] int dist_pair_swapped(std::int32_t pa, std::int32_t pb,
                                      int ea, int eb) const {
    if (pa == ea) pa = eb;
    else if (pa == eb) pa = ea;
    if (pb == ea) pb = eb;
    else if (pb == eb) pb = ea;
    return dist(pa, pb);
  }

  /// Emits a SWAP and keeps the flat mirror in lockstep with the
  /// emitter's Placement.
  void emit_swap(RoutingEmitter& emitter, int phys_a, int phys_b) {
    emitter.emit_swap(phys_a, phys_b);
    const std::int32_t wa = prog_at_[phys_a];
    const std::int32_t wb = prog_at_[phys_b];
    prog_at_[phys_a] = wb;
    prog_at_[phys_b] = wa;
    if (wa >= 0) phys_of_[wa] = phys_b;
    if (wb >= 0) phys_of_[wb] = phys_a;
  }

  /// Emits every executable ready gate until fixpoint, calling
  /// on_emit(node) after each emission. Returns true when anything ran.
  template <typename OnEmit>
  bool flush_executable(RoutingEmitter& emitter, OnEmit&& on_emit) {
    bool progressed = true;
    bool any = false;
    while (progressed) {
      progressed = false;
      // Snapshot: mark_scheduled mutates the ready list.
      const std::uint32_t count = front.ready_size();
      std::memcpy(ready_snapshot_, front.ready(),
                  count * sizeof(std::uint32_t));
      for (std::uint32_t k = 0; k < count; ++k) {
        const std::uint32_t node = ready_snapshot_[k];
        if (!executable(node)) continue;
        emitter.emit_program_gate(circuit_->gate(node));
        on_emit(node);
        front.mark_scheduled(node);
        progressed = true;
        any = true;
      }
    }
    return any;
  }

  /// Re-derives front_gates/front_size from the front layer.
  void refresh_front() { front_size = front.ready_two_qubit(front_buf_); }

  /// Extended lookahead: the first (up to) `window` unscheduled two-qubit
  /// gates in program order that are not in the current front. Writes into
  /// `out` (capacity >= min(window, ir.num_two_qubit)), returns the count.
  std::uint32_t collect_extended(std::size_t window, std::uint32_t* out);

  /// Zeroes `relevant` (num_phys entries) then marks the physical qubits
  /// holding an operand of a front gate.
  void mark_relevant(std::uint8_t* relevant) const;

  /// Shortest physical path, same backend selection as
  /// Router::phys_shortest_path (artifacts when attached, else coupling).
  [[nodiscard]] std::vector<int> shortest_path(int a, int b) const;

  [[nodiscard]] int num_phys() const noexcept { return num_phys_; }

 private:
  // Lazily BFS-fills the parent row for source `a` (no-artifacts path
  // reconstruction; identical parents to CouplingGraph::shortest_path).
  void ensure_path_row(int a) const;

  const Circuit* circuit_ = nullptr;
  const Device* device_ = nullptr;
  const ArchArtifacts* artifacts_ = nullptr;  // maybe null
  RouteArena* arena_ = nullptr;
  const int* dist_ = nullptr;                 // num_phys^2 row-major
  int num_phys_ = 0;
  std::uint32_t* phys_of_ = nullptr;   // program qubit -> physical
  std::int32_t* prog_at_ = nullptr;    // physical -> program (-1 = free)
  std::uint32_t* ready_snapshot_ = nullptr;
  std::uint32_t* front_buf_ = nullptr;
  // Per-source BFS parent rows for shortest_path without artifacts:
  // storage allocated in the ctor (a nested scope must not own it), rows
  // filled on demand (bridges and stall rescues are rare relative to
  // swap decisions, but cluster on the same few sources).
  mutable std::int32_t* path_parent_ = nullptr;  // num_phys^2
  mutable std::uint8_t* path_row_valid_ = nullptr;
  mutable std::int32_t* path_queue_ = nullptr;  // BFS scratch, num_phys
  std::uint32_t ext_cursor_ = 0;  // first maybe-unscheduled index into
                                  // ir.two_qubit (monotonic skip)
};

}  // namespace qmap
