// ExecutionSnapshot — the mapper-internal representation of Sec. VI-B,
// made concrete:
//
//   "the execution snapshot is a complete description of the algorithm and
//    its current, usually partial, schedule. It contains:
//      - the dependency graph of the algorithm with the indication of which
//        gates have already been scheduled
//      - the initial placement [...]
//      - the current placement of the qubits
//      - the partial schedule with the timing information and explicit
//        parallelism
//      - the settings of the control electronics for the execution."
//
// The snapshot wraps a physical-qubit circuit and schedules it one gate at
// a time (critical-path priority, earliest feasible cycle under the
// device's control constraints), exposing every intermediate state the
// paper lists. Running it to completion yields the same class of schedule
// as schedule_constrained.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/device.hpp"
#include "ir/dag.hpp"
#include "layout/placement.hpp"
#include "schedule/constraints.hpp"
#include "schedule/schedule.hpp"

namespace qmap {

class ExecutionSnapshot {
 public:
  /// `circuit` must be on physical qubits (routed); `initial` is the
  /// placement the router started from.
  ExecutionSnapshot(Circuit circuit, const Device& device, Placement initial);

  // --- Sec. VI-B components ---

  /// Dependency graph with Scheduled / Ready / Pending colours.
  [[nodiscard]] const DependencyDag& dependency_graph() const {
    return *dag_;
  }
  [[nodiscard]] const Placement& initial_placement() const {
    return initial_;
  }
  /// Placement after the SWAPs scheduled so far.
  [[nodiscard]] const Placement& current_placement() const {
    return current_;
  }
  /// The partial schedule (timing + explicit parallelism).
  [[nodiscard]] const Schedule& partial_schedule() const { return schedule_; }
  /// Control-electronics settings: for every (cycle, frequency group) the
  /// waveform the shared AWG is playing. Empty for unconstrained devices.
  [[nodiscard]] std::map<std::pair<int, int>, std::string> control_settings()
      const;

  // --- Stepping ---

  /// Schedules one more gate (highest-priority ready gate at its earliest
  /// feasible cycle). Returns false when every gate is scheduled.
  bool step();
  /// Steps until completion; returns the final schedule latency in cycles.
  int run_to_completion();
  [[nodiscard]] bool complete() const { return dag_->all_scheduled(); }

  [[nodiscard]] std::string to_string() const;

 private:
  Circuit circuit_;
  const Device* device_;
  std::unique_ptr<DependencyDag> dag_;
  Placement initial_;
  Placement current_;
  Schedule schedule_;
  std::vector<std::unique_ptr<ResourceConstraint>> constraints_;
  std::vector<double> priority_;
  std::vector<int> end_cycle_;   // per DAG node
  std::vector<int> qubit_busy_;  // per physical qubit
};

}  // namespace qmap
