// Result-corruption fault primitives.
//
// Extracted from the differential fuzzer so every harness that needs a
// planted bug shares one implementation: the fuzzer's oracle self-tests
// (verify/fuzzer.hpp), reproducer replay, and the resilience pipeline's
// "corrupt-result" fault point (src/resilience/fault_injector.hpp). Each
// primitive sabotages a *finished* CompilationResult exactly the way a
// buggy router would — the reported placements stay untouched while the
// final circuit silently stops matching them — so downstream validity/
// equivalence checking is what must catch it.
#pragma once

#include <string>

#include "arch/device.hpp"
#include "core/compiler.hpp"

namespace qmap::verify {

/// Post-routing sabotage for harness self-tests: prove the oracle catches
/// a planted bug before trusting it on real ones.
enum class FaultInjection {
  None,
  /// Remove the last routing SWAP and rebuild the final circuit: the
  /// mapped circuit stays coupling-legal but no longer matches the
  /// reported final placement — an equivalence failure.
  DropLastSwap,
  /// Flip the operands of the last CX of the final circuit: a direction
  /// violation on directed devices (validity), an equivalence failure on
  /// symmetric ones.
  FlipLastCx,
};

[[nodiscard]] std::string fault_name(FaultInjection fault);
[[nodiscard]] FaultInjection fault_from_name(const std::string& name);

/// Applies the planted bug to a finished compilation. DropLastSwap redoes
/// the post-routing passes from a sabotaged routed circuit; FlipLastCx
/// edits the final circuit directly. Both leave the *reported* placements
/// untouched — exactly what a buggy router would do. The stale schedule is
/// dropped so the failure surfaces as the intended oracle, not as a
/// schedule/circuit disagreement. Returns true when the result was
/// actually altered (false for None, or when the circuit has no gate of
/// the targeted kind).
bool inject_fault(CompilationResult& result, const Device& device,
                  FaultInjection fault);

}  // namespace qmap::verify
