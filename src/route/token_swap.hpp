// Token swapping for final-permutation cleanup ("On the qubit routing
// problem", Cowtan et al.): given where the routed circuit left every wire
// and where it should end up, synthesize the correcting permutation as
// rounds of *disjoint* SWAPs that can run in parallel, instead of the
// sequential chain a naive cycle decomposition emits.
//
// Three phases, first one that finishes wins:
//   1. greedy rounds — repeatedly pick the highest-gain SWAP among edges
//      whose endpoints are untouched this round (gain = total program-token
//      distance reduction; free wires are don't-care tokens),
//   2. zero-gain escapes — when no positive-gain SWAP exists (e.g. a
//      distance-2 transposition on a path), advance the lowest-index
//      misplaced token one hop toward home, under a budget,
//   3. spanning-tree sort — a guaranteed-terminating O(n^2)-swap fallback
//      that homes tokens onto BFS-tree leaves deepest-first.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "arch/artifacts.hpp"
#include "arch/device.hpp"
#include "ir/gate.hpp"
#include "layout/placement.hpp"

namespace qmap {

/// One parallel round of SWAPs; the pairs are vertex-disjoint and each pair
/// (a, b) with a < b is an edge of the device coupling graph.
using SwapRound = std::vector<std::pair<int, int>>;

struct TokenSwapPlan {
  std::vector<SwapRound> rounds;
  std::size_t greedy_swaps = 0;    // phase-1 positive-gain swaps
  std::size_t escape_swaps = 0;    // phase-2 zero-gain escape swaps
  std::size_t fallback_swaps = 0;  // phase-3 spanning-tree swaps

  [[nodiscard]] std::size_t total_swaps() const;
};

/// Plans SWAPs that, applied to `current`, bring every *program* wire to
/// the physical qubit `target` assigns it (free wires are don't-care and
/// may land anywhere). Throws MappingError when the placements disagree
/// with the device or the coupling graph is disconnected. `artifacts` is
/// optional; when present, distance/path queries read its immutable tables.
/// `escape_budget` caps consecutive zero-gain escapes before the fallback
/// engages; -1 selects the default (2n+4), 0 forces the fallback (tests).
[[nodiscard]] TokenSwapPlan plan_token_swaps(const Placement& current,
                                             const Placement& target,
                                             const Device& device,
                                             const ArchArtifacts* artifacts,
                                             int escape_budget = -1);

/// A token-swap plan flattened into circuit form: the SWAPs as gates in
/// emission order, plus the wire-position remap a trailing
/// measurement/barrier suffix must be routed through (position_of[p] is
/// where the wire sitting on physical qubit p before the cleanup ends up
/// afterwards). Shared by the materialized TokenSwapFinisherPass and the
/// streaming finisher sink so both emit byte-identical cleanups.
struct TokenSwapCleanup {
  std::vector<Gate> swaps;
  std::vector<int> position_of;
  std::size_t rounds = 0;

  [[nodiscard]] std::size_t total_swaps() const noexcept {
    return swaps.size();
  }
};

/// Plans the cleanup returning `current` to `target` and applies the
/// resulting SWAPs to `current` (mirroring what emitting them does to the
/// routing state).
[[nodiscard]] TokenSwapCleanup plan_token_swap_cleanup(
    Placement& current, const Placement& target, const Device& device,
    const ArchArtifacts* artifacts);

}  // namespace qmap
