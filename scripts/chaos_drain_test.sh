#!/usr/bin/env bash
# End-to-end drain check against the real qmap_serve binary: feed it a
# slow request stream over a fifo, SIGTERM it mid-stream, and assert the
# daemon (a) exits 0, (b) reports the drain on stderr, and (c) flushed a
# response line for every request it accepted before the signal. This is
# the process-level half of the drain story; tests/test_chaos.cpp covers
# the in-process CompileService::drain() semantics.
#
# Usage: scripts/chaos_drain_test.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
SERVE="${BUILD}/src/qmap_serve"
if [ ! -x "${SERVE}" ]; then
  echo "chaos_drain_test: ${SERVE} not built" >&2
  exit 1
fi

WORK="$(mktemp -d)"
trap 'rm -rf "${WORK}"' EXIT
FIFO="${WORK}/requests.fifo"
OUT="${WORK}/responses.jsonl"
ERR="${WORK}/stderr.log"
mkfifo "${FIFO}"

QASM='OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncx q[0],q[1];\ncx q[1],q[2];\ncx q[0],q[2];'

# The daemon reads the fifo; holding a write fd open keeps it from seeing
# EOF until we are done, so the SIGTERM lands mid-stream.
"${SERVE}" --workers 2 --drain-ms 5000 <"${FIFO}" >"${OUT}" 2>"${ERR}" &
SERVE_PID=$!
exec 3>"${FIFO}"

request() {
  printf '{"op":"compile","id":"%s","client":"drain","device":"ibm_qx4","qasm":"%s","seed":%d}\n' \
    "$1" "${QASM}" "$2" >&3
}

printf '{"op":"ping","id":"p0"}\n' >&3
request r0 1
request r1 2
request r2 3

# Wait until the ping answer proves the daemon is up and the compiles are
# in the pipeline, then signal with the stream still open.
for _ in $(seq 1 100); do
  grep -q '"id":"p0"' "${OUT}" 2>/dev/null && break
  sleep 0.1
done
grep -q '"id":"p0"' "${OUT}" || {
  echo "chaos_drain_test: daemon never answered the ping" >&2
  kill -9 "${SERVE_PID}" 2>/dev/null || true
  exit 1
}

kill -TERM "${SERVE_PID}"
RC=0
wait "${SERVE_PID}" || RC=$?
exec 3>&-

if [ "${RC}" -ne 0 ]; then
  echo "chaos_drain_test: daemon exited ${RC} on SIGTERM (want 0)" >&2
  cat "${ERR}" >&2
  exit 1
fi
if ! grep -q 'drained in' "${ERR}"; then
  echo "chaos_drain_test: no drain report on stderr" >&2
  cat "${ERR}" >&2
  exit 1
fi

# Every request written before the signal must have a flushed response
# line; accepted compiles answer ok, anything the drain caught answers
# shed/cancelled — never silence.
for id in p0 r0 r1 r2; do
  if ! grep -q "\"id\":\"${id}\"" "${OUT}"; then
    echo "chaos_drain_test: no response for ${id} (responses below)" >&2
    cat "${OUT}" >&2
    exit 1
  fi
done
if grep -qv '^{' "${OUT}"; then
  echo "chaos_drain_test: non-JSON garbage in the response stream" >&2
  exit 1
fi

echo "chaos_drain_test: SIGTERM drained cleanly, exit 0," \
     "$(wc -l <"${OUT}") responses flushed"
