// Streaming out-of-core compilation: throughput and peak-RSS scaling.
//
// The headline claim of the streaming pipeline is that peak memory is
// O(routing window), not O(circuit): compiling a million-gate circuit
// through PassManager::run_stream must not cost (much) more resident
// memory than compiling ten thousand gates with the same window. Each
// BM_StreamCompile size records the process peak RSS (getrusage) after
// the run as a counter; ru_maxrss is process-global and monotonic, so the
// sizes are registered ascending — a flat profile across 10k -> 1M gates
// is exactly the out-of-core property, and bench_snapshot.sh gates on the
// 1M/10k ratio staying under 2x.
#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <chrono>

#include "bench_util.hpp"
#include "ir/gate_stream.hpp"
#include "pass/manager.hpp"
#include "workloads/stream_workloads.hpp"

namespace qmap {
namespace {

double peak_rss_mb() {
  struct rusage usage = {};
  getrusage(RUSAGE_SELF, &usage);
  // Linux reports ru_maxrss in KiB.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

// The fully streamable pipeline: chunk-wise decompose, identity placement,
// windowed sabre routing, token-swap cleanup at end-of-stream. No
// postroute/schedule tail — those materialize, which is exactly what this
// bench must not do.
PipelineSpec streaming_spec() {
  PipelineSpec spec;
  spec.append("decompose");
  Json placer_options;
  placer_options["algorithm"] = Json(std::string("identity"));
  spec.append("placer", std::move(placer_options));
  Json router_options;
  router_options["algorithm"] = Json(std::string("sabre"));
  spec.append("router", std::move(router_options));
  spec.append("token_swap_finisher");
  return spec;
}

void BM_StreamCompile(benchmark::State& state) {
  const std::size_t target = static_cast<std::size_t>(state.range(0));
  const Device device = devices::ibm_qx5();
  const PassManager manager(streaming_spec());
  const PipelineRuntime runtime;
  StreamPipelineOptions options;  // fixed window regardless of size

  std::size_t gates_in = 0;
  std::size_t gates_out = 0;
  std::size_t window_peak = 0;
  double gates_per_sec = 0.0;
  for (auto _ : state) {
    // 6-bit Cuccaro adder blocks (14 qubits) repeated to `target` gates;
    // the generator holds one block, so RSS measures the pipeline.
    workloads::RepeatedBlockSource source =
        workloads::cuccaro_stream(6, target);
    CountingSink sink;
    const auto start = std::chrono::steady_clock::now();
    const StreamReport report =
        manager.run_stream(source, device, sink, runtime, options);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (report.stream.materialized_input || !report.stream.streamed_route ||
        !report.stream.materialized_passes.empty()) {
      state.SkipWithError("pipeline did not stream");
      return;
    }
    gates_in = report.stream.gates_in;
    gates_out = report.stream.gates_out;
    window_peak = report.stream.window_peak_gates;
    if (seconds > 0) {
      gates_per_sec = static_cast<double>(gates_in) / seconds;
    }
  }
  state.counters["gates_in"] = static_cast<double>(gates_in);
  state.counters["gates_out"] = static_cast<double>(gates_out);
  state.counters["window_peak_gates"] = static_cast<double>(window_peak);
  state.counters["gates_per_sec"] = gates_per_sec;
  state.counters["peak_rss_mb"] = peak_rss_mb();
  state.SetLabel("cuccaro6@ibm_qx5 window=" +
                 std::to_string(options.chunk_gates));
}
// Ascending registration order is load-bearing: ru_maxrss never decreases,
// so each size's counter reflects the high-water mark up to and including
// that size.
BENCHMARK(BM_StreamCompile)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void print_figure() {
  bench::section("Streaming out-of-core compilation (DESIGN.md Sec. 12)");
  bench::paper_note(
      "Devices impose tight memory envelopes on control software; the "
      "windowed pipeline compiles circuits far larger than memory by "
      "keeping only the routing window resident.");
  std::cout << "BM_StreamCompile/<gates>: chunk-wise decompose + windowed "
               "sabre + token-swap cleanup, counters carry gates/sec and "
               "process peak RSS; flat peak_rss_mb from 10k to 1M gates is "
               "the out-of-core property.\n";
}

}  // namespace
}  // namespace qmap

int main(int argc, char** argv) {
  qmap::print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
