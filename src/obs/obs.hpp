// Unified observability: metrics, RAII span tracing, bounded trace buffer.
//
// The mapping flow (placement -> routing -> scheduling, Sec. III-VI) is a
// multi-stage pipeline whose overheads must be measured per stage to be
// optimized — MQT QMAP and the tket routing work both report per-pass
// metrics as first-class outputs. This module is the one sink every layer
// records into:
//
//   MetricsRegistry — named counters, gauges and fixed-bucket histograms.
//                     All mutating operations are commutative (integer
//                     adds, bucket increments), so aggregation across the
//                     engine ThreadPool is byte-deterministic regardless
//                     of thread count. Wall-clock values must be recorded
//                     under names ending in "_ms"; fingerprint() excludes
//                     exactly those, making the deterministic subset easy
//                     to diff in tests and CI.
//   Span            — RAII trace span with parent/child nesting. The
//                     parent defaults to the calling thread's innermost
//                     open span (thread-local stack); cross-thread
//                     attribution (a portfolio worker under the race root)
//                     passes the parent's seq explicitly. Destruction
//                     records a SpanRecord into the TraceBuffer.
//   TraceBuffer     — lock-sharded bounded store of completed spans with
//                     an exact drop counter: once `capacity` records were
//                     accepted, every further record() increments
//                     dropped() and stores nothing, so memory is bounded
//                     and loss is observable instead of silent.
//   Observer        — the facade the pipeline threads through
//                     (CompilerOptions::obs, PortfolioOptions::obs,
//                     resilience::Policy::obs, FuzzOptions::obs). A null
//                     Observer* — the default everywhere — reduces every
//                     recording helper to one pointer compare, so the
//                     instrumented hot paths cost nothing when
//                     observability is off.
//
// Exporters (chrome-trace JSON, flat metrics JSON, ASCII span tree) live
// in obs/export.hpp. This library depends only on common/.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/json.hpp"

namespace qmap::obs {

struct ObsConfig {
  /// Master switch: a disabled Observer accepts every call and records
  /// nothing (used by benches to price the instrumentation itself).
  bool enabled = true;
  /// Maximum completed spans retained across all shards; further records
  /// are counted in TraceBuffer::dropped() and discarded.
  std::size_t trace_capacity = 1 << 16;
  /// Lock shards for the trace buffer (clamped to >= 1). Spans recorded by
  /// different worker threads land in different shards, so concurrent
  /// strategy races never serialize on one mutex.
  int trace_shards = 16;
};

/// Bucket boundaries shared by every histogram that does not pass its own:
/// observations land in the first bucket whose boundary is >= the value,
/// with one implicit overflow bucket past the last boundary. Stable by
/// contract — tests pin these values.
[[nodiscard]] const std::vector<double>& default_histogram_boundaries();

/// Fixed-bucket histogram. Bucket counts and the observation count are
/// integers, so concurrent observation is order-independent; `sum` is
/// exact (and therefore order-independent too) as long as observations are
/// integer-valued, which every deterministic metric in the pipeline is.
struct HistogramSnapshot {
  std::vector<double> boundaries;
  std::vector<std::uint64_t> counts;  // boundaries.size() + 1 (overflow last)
  std::uint64_t count = 0;
  double sum = 0.0;

  [[nodiscard]] Json to_json() const;
};

/// Registry of named metrics. Thread-safe; names are ordered (std::map),
/// so every dump is deterministically sorted.
class MetricsRegistry {
 public:
  /// Counter: monotonically increasing integer.
  void add(std::string_view name, std::uint64_t delta = 1);
  /// Gauge: last value written wins. Only byte-deterministic when set from
  /// one thread (the aggregation points all do).
  void set_gauge(std::string_view name, double value);
  /// Histogram observation with the default boundaries, or with explicit
  /// ones on the call that creates the histogram (later calls reuse the
  /// creation-time boundaries).
  void observe(std::string_view name, double value);
  void observe(std::string_view name, double value,
               const std::vector<double>& boundaries);

  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  [[nodiscard]] double gauge(std::string_view name) const;
  [[nodiscard]] HistogramSnapshot histogram(std::string_view name) const;

  /// Flat JSON dump: {"counters":{...},"gauges":{...},"histograms":{...}},
  /// keys sorted. `include_timing` = false drops every metric whose name
  /// ends in "_ms" — the convention for wall-clock values.
  [[nodiscard]] Json to_json(bool include_timing = true) const;
  /// The deterministic subset, serialized: byte-identical across runs and
  /// thread counts for a fixed seed. Equals to_json(false).dump().
  [[nodiscard]] std::string fingerprint() const;

  void clear();

 private:
  struct Histogram {
    std::vector<double> boundaries;
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// One completed (or instant) span, as stored in the TraceBuffer.
struct SpanRecord {
  /// Begin-order sequence number, unique per Observer, monotonically
  /// increasing within each thread. 0 is reserved for "no parent".
  std::uint64_t seq = 0;
  std::uint64_t parent_seq = 0;
  /// Virtual thread ordinal within the Observer (0 = first recording
  /// thread, usually the caller's).
  int tid = 0;
  std::int64_t start_us = 0;
  std::int64_t end_us = 0;
  std::string name;
  std::string category;
  std::vector<std::pair<std::string, std::string>> args;

  [[nodiscard]] double duration_ms() const {
    return static_cast<double>(end_us - start_us) / 1000.0;
  }
};

/// Bounded, lock-sharded store of completed spans with an exact global
/// drop counter (see file comment).
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = 1 << 16, int shards = 16);

  /// True when stored; false (and dropped() incremented) once the global
  /// capacity was reached. Exact under concurrency: every record() call
  /// either stores or counts as dropped, never both, never neither.
  bool record(SpanRecord record);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Merged copy of every stored span, sorted by (tid, seq) — a
  /// deterministic order for a deterministic workload.
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;

  void clear();

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::vector<SpanRecord> records;
  };

  std::size_t capacity_;
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
};

class Span;

/// The facade every instrumented layer holds (by plain pointer, null = off).
class Observer {
 public:
  Observer() : Observer(ObsConfig{}) {}
  explicit Observer(ObsConfig config);

  Observer(const Observer&) = delete;
  Observer& operator=(const Observer&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return config_.enabled; }
  [[nodiscard]] const ObsConfig& config() const noexcept { return config_; }
  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] TraceBuffer& trace() noexcept { return trace_; }
  [[nodiscard]] const TraceBuffer& trace() const noexcept { return trace_; }

  /// Microsecond timestamp from the observer's clock. Defaults to
  /// steady_clock; tests install a fake via set_clock for byte-stable
  /// golden traces.
  [[nodiscard]] std::int64_t now_us() const;
  void set_clock(std::function<std::int64_t()> now_us);

  /// This thread's stable ordinal within this observer (assigned on first
  /// use, starting at 0).
  [[nodiscard]] int thread_ordinal();

  /// Records a zero-duration span (an event marker, e.g. a fired fault).
  /// Parent defaults to the calling thread's innermost open span.
  void instant(std::string name, std::string category,
               std::vector<std::pair<std::string, std::string>> args = {});

 private:
  friend class Span;

  [[nodiscard]] std::uint64_t next_seq() noexcept {
    return seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  ObsConfig config_;
  MetricsRegistry metrics_;
  TraceBuffer trace_;
  std::atomic<std::uint64_t> seq_{0};
  std::function<std::int64_t()> now_us_;
  mutable std::mutex clock_mutex_;  // guards now_us_ replacement only
  std::mutex tid_mutex_;
  std::map<std::thread::id, int> tids_;
};

/// RAII trace span. Inert when constructed with a null/disabled observer —
/// no clock reads, no allocation beyond the name strings the caller built.
/// `parent_seq` 0 means "the calling thread's innermost open span".
class Span {
 public:
  Span() = default;
  Span(Observer* observer, std::string name, std::string category,
       std::uint64_t parent_seq = 0);
  ~Span() { end(); }

  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  [[nodiscard]] bool active() const noexcept { return observer_ != nullptr; }
  /// This span's seq (0 when inert) — pass as parent_seq for explicit
  /// cross-thread nesting.
  [[nodiscard]] std::uint64_t seq() const noexcept { return record_.seq; }

  /// Attaches a key/value attribute (e.g. strategy label). No-op when
  /// inert.
  void arg(std::string key, std::string value);

  /// Ends the span now (idempotent; the destructor calls it too).
  void end();

 private:
  Observer* observer_ = nullptr;
  SpanRecord record_;
};

// Null-safe recording helpers: every call site holds a maybe-null
// Observer*, and these compile down to one pointer test when it is null.
inline void add(Observer* observer, std::string_view name,
                std::uint64_t delta = 1) {
  if (observer != nullptr && observer->enabled()) {
    observer->metrics().add(name, delta);
  }
}

inline void set_gauge(Observer* observer, std::string_view name,
                      double value) {
  if (observer != nullptr && observer->enabled()) {
    observer->metrics().set_gauge(name, value);
  }
}

inline void observe(Observer* observer, std::string_view name, double value) {
  if (observer != nullptr && observer->enabled()) {
    observer->metrics().observe(name, value);
  }
}

inline void instant(Observer* observer, std::string name,
                    std::string category,
                    std::vector<std::pair<std::string, std::string>> args = {}) {
  if (observer != nullptr && observer->enabled()) {
    observer->instant(std::move(name), std::move(category), std::move(args));
  }
}

}  // namespace qmap::obs
