# Empty dependencies file for qmap_core.
# This may be replaced when dependencies are built.
