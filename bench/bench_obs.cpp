// Observability overhead — the obs layer's core promise, measured:
// attaching an Observer to a portfolio compile must be cheap, and NOT
// attaching one must be essentially free (the acceptance bar is <2%
// overhead for the disabled path on a Surface-17 portfolio compile).
//
// Three configurations are timed on the same circuit/seed:
//
//   1. baseline  — no Observer anywhere (options.obs == nullptr); every
//      obs:: helper reduces to a null-pointer compare.
//   2. disabled  — an Observer constructed with ObsConfig{enabled=false}
//      is attached; spans and metric writes return after one bool check.
//   3. enabled   — full span recording + metrics into a live Observer.
//
// The figure section reports the measured overhead percentages and exits
// non-zero if the disabled path exceeds the 2% budget (with slack for
// timer noise on loaded CI machines), so the bench doubles as a
// regression gate. The google-benchmark section then gives per-config
// timings for finer comparison.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <vector>

#include "bench_util.hpp"
#include "engine/portfolio.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"

namespace {

using namespace qmap;
using namespace qmap::bench;

Circuit bench_circuit() {
  Rng rng(99);
  return workloads::random_circuit(10, 80, rng, 0.45);
}

PortfolioOptions bench_options(obs::Observer* observer) {
  PortfolioOptions options;
  options.num_threads = 2;
  options.cost_name = "gates";
  options.base_seed = 0xC0FFEE;
  options.obs = observer;
  return options;
}

/// Median-of-repeats wall time for one portfolio compile configuration.
double median_compile_ms(obs::Observer* observer, int repeats) {
  const Device device = devices::surface17();
  const PortfolioCompiler portfolio(device, bench_options(observer));
  const Circuit circuit = bench_circuit();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    if (observer != nullptr) {
      observer->trace().clear();
      observer->metrics().clear();
    }
    const auto start = std::chrono::steady_clock::now();
    const PortfolioResult result = portfolio.compile(circuit);
    const auto stop = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(&result);
    samples.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

void print_figure() {
  paper_note(
      "Operational concern raised by running compilers as services: "
      "tracing the pipeline must not change what it measures. The obs "
      "layer promises near-zero disabled cost and modest enabled cost.");

  constexpr int kRepeats = 9;
  const double baseline_ms = median_compile_ms(nullptr, kRepeats);

  obs::ObsConfig disabled_config;
  disabled_config.enabled = false;
  obs::Observer disabled_observer(disabled_config);
  const double disabled_ms = median_compile_ms(&disabled_observer, kRepeats);

  obs::Observer enabled_observer;
  const double enabled_ms = median_compile_ms(&enabled_observer, kRepeats);
  const std::size_t spans_recorded = enabled_observer.trace().size();

  const auto overhead_pct = [&](double ms) {
    return (ms - baseline_ms) / baseline_ms * 100.0;
  };

  section("Observer overhead on Surface-17 portfolio compile (median of " +
          std::to_string(kRepeats) + " runs)");
  TextTable table({"configuration", "wall ms", "overhead %"});
  table.add_row({"baseline (no observer)", TextTable::num(baseline_ms, 2),
                 "-"});
  table.add_row({"observer attached, disabled",
                 TextTable::num(disabled_ms, 2),
                 TextTable::num(overhead_pct(disabled_ms), 2)});
  table.add_row({"observer enabled (full spans+metrics)",
                 TextTable::num(enabled_ms, 2),
                 TextTable::num(overhead_pct(enabled_ms), 2)});
  std::cout << table.str();
  std::printf("enabled run recorded %zu spans, %zu dropped\n", spans_recorded,
              static_cast<std::size_t>(enabled_observer.trace().dropped()));

  // Regression gate: the disabled path must stay within the 2% budget.
  // Median-of-9 suppresses most scheduler noise, but a loaded CI host can
  // still jitter single-digit percents either way, so the hard failure
  // threshold adds slack on top of the design budget.
  constexpr double kDesignBudgetPct = 2.0;
  constexpr double kNoiseSlackPct = 8.0;
  const double disabled_overhead = overhead_pct(disabled_ms);
  std::printf("disabled-path budget: %.1f%% (measured %+.2f%%)\n",
              kDesignBudgetPct, disabled_overhead);
  if (disabled_overhead > kDesignBudgetPct + kNoiseSlackPct) {
    std::cerr << "FATAL: disabled observer overhead " << disabled_overhead
              << "% exceeds budget + noise slack\n";
    std::exit(1);
  }
}

void BM_PortfolioNoObserver(benchmark::State& state) {
  const Device device = devices::surface17();
  const PortfolioCompiler portfolio(device, bench_options(nullptr));
  const Circuit circuit = bench_circuit();
  for (auto _ : state) {
    benchmark::DoNotOptimize(portfolio.compile(circuit));
  }
  state.SetLabel("baseline");
}
BENCHMARK(BM_PortfolioNoObserver);

void BM_PortfolioDisabledObserver(benchmark::State& state) {
  const Device device = devices::surface17();
  obs::ObsConfig config;
  config.enabled = false;
  obs::Observer observer(config);
  const PortfolioCompiler portfolio(device, bench_options(&observer));
  const Circuit circuit = bench_circuit();
  for (auto _ : state) {
    benchmark::DoNotOptimize(portfolio.compile(circuit));
  }
  state.SetLabel("disabled");
}
BENCHMARK(BM_PortfolioDisabledObserver);

void BM_PortfolioEnabledObserver(benchmark::State& state) {
  const Device device = devices::surface17();
  obs::Observer observer;
  const PortfolioCompiler portfolio(device, bench_options(&observer));
  const Circuit circuit = bench_circuit();
  for (auto _ : state) {
    observer.trace().clear();
    observer.metrics().clear();
    benchmark::DoNotOptimize(portfolio.compile(circuit));
  }
  state.SetLabel("enabled");
}
BENCHMARK(BM_PortfolioEnabledObserver);

void BM_SpanRecordOnly(benchmark::State& state) {
  // Isolates the per-span cost: open + end one span with one argument.
  obs::Observer observer;
  for (auto _ : state) {
    obs::Span span(&observer, "bench", "micro");
    span.arg("k", "v");
  }
  state.SetLabel("one span");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpanRecordOnly);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
