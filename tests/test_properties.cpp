// Cross-module property sweeps (parameterized over random seeds):
// invariants that must hold for *every* circuit/device combination, not
// just hand-picked examples.
#include <gtest/gtest.h>

#include "arch/builtin.hpp"
#include "core/compiler.hpp"
#include "decompose/decomposer.hpp"
#include "ir/dag.hpp"
#include "qasm/openqasm.hpp"
#include "schedule/schedulers.hpp"
#include "sim/equivalence.hpp"
#include "sim/statevector.hpp"
#include "workloads/workloads.hpp"

namespace qmap {
namespace {

class SeedSweep : public testing::TestWithParam<int> {};

TEST_P(SeedSweep, OpenQasmRoundTripIsSemanticIdentity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Circuit circuit = workloads::random_circuit(4, 35, rng, 0.35);
  const Circuit reparsed = parse_openqasm(to_openqasm(circuit));
  EXPECT_TRUE(circuits_equivalent_exact(circuit, reparsed, 1e-7));
}

TEST_P(SeedSweep, LoweringPreservesSemanticsOnBothNativeSets) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  const Circuit circuit = workloads::random_circuit(4, 30, rng, 0.45);
  for (const Device& device : {devices::ibm_qx4(), devices::surface17()}) {
    const Circuit lowered = lower_to_device(circuit, device);
    for (const Gate& gate : lowered) {
      EXPECT_TRUE(device.is_native_kind(gate.kind)) << gate.to_string();
    }
    EXPECT_TRUE(circuits_equivalent_exact(circuit, lowered, 1e-7));
  }
}

TEST_P(SeedSweep, GateInverseRestoresRandomStates) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 200);
  const Circuit circuit = workloads::random_circuit(5, 25, rng, 0.4);
  StateVector state(5);
  state.randomize(rng);
  StateVector original = state;
  state.run(circuit);
  EXPECT_NEAR(state.norm(), 1.0, 1e-9);  // unitarity preserved numerically
  state.run(circuit.inverse());
  EXPECT_TRUE(state.approx_equal(original, 1e-7));
}

TEST_P(SeedSweep, DagEdgesRespectProgramOrder) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 300);
  const Circuit circuit = workloads::random_circuit(5, 40, rng, 0.5);
  for (const DagMode mode : {DagMode::Sequential, DagMode::Commutation}) {
    const DependencyDag dag(circuit, mode);
    for (std::size_t i = 0; i < dag.num_nodes(); ++i) {
      for (const int pred : dag.predecessors(static_cast<int>(i))) {
        EXPECT_LT(pred, static_cast<int>(i));
      }
      for (const int succ : dag.successors(static_cast<int>(i))) {
        EXPECT_GT(succ, static_cast<int>(i));
      }
    }
  }
}

TEST_P(SeedSweep, CommutationDagIsSubgraphOfSequential) {
  // Relaxation only removes constraints, never adds them.
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 400);
  const Circuit circuit = workloads::random_circuit(4, 30, rng, 0.5);
  const DependencyDag strict(circuit, DagMode::Sequential);
  const DependencyDag relaxed(circuit, DagMode::Commutation);
  std::size_t strict_edges = 0;
  std::size_t relaxed_edges = 0;
  for (std::size_t i = 0; i < strict.num_nodes(); ++i) {
    strict_edges += strict.predecessors(static_cast<int>(i)).size();
    relaxed_edges += relaxed.predecessors(static_cast<int>(i)).size();
  }
  // Relaxed may contain transitively redundant edges, so compare the
  // *reachability* instead: every strict-ready node must be relaxed-ready.
  for (const int node : strict.ready()) {
    EXPECT_EQ(relaxed.color(node), NodeColor::Ready) << node;
  }
  (void)strict_edges;
  (void)relaxed_edges;
}

TEST_P(SeedSweep, SchedulesAreConsistentAndOrdered) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
  const Device s17 = devices::surface17();
  Circuit circuit(17);
  // Random gates directly on physical qubits (scheduler input is routed).
  for (int i = 0; i < 25; ++i) {
    if (rng.chance(0.4)) {
      const auto& edge = s17.coupling().edges()[rng.index(
          s17.coupling().edges().size())];
      circuit.cz(edge.a, edge.b);
    } else {
      const int q = static_cast<int>(rng.index(17));
      if (rng.chance(0.5)) circuit.x(q);
      else circuit.ry(rng.uniform(0.1, 1.0), q);
    }
  }
  const Schedule asap = schedule_asap(circuit, s17);
  const Schedule alap = schedule_alap(circuit, s17);
  const Schedule constrained = schedule_for_device(circuit, s17);
  EXPECT_TRUE(asap.is_consistent_with(circuit));
  EXPECT_TRUE(alap.is_consistent_with(circuit));
  EXPECT_TRUE(constrained.is_consistent_with(circuit));
  EXPECT_EQ(asap.total_cycles(), alap.total_cycles());
  EXPECT_GE(constrained.total_cycles(), asap.total_cycles());
}

TEST_P(SeedSweep, EndToEndCompileVerifiesOnEveryDeviceFamily)  {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 600);
  const Circuit circuit = workloads::random_circuit(4, 20, rng, 0.4);
  for (const Device& device :
       {devices::ibm_qx4(), devices::surface17(), devices::trapped_ion(5),
        devices::quantum_dot_array(2, 3)}) {
    CompilerOptions options;
    options.router = device.supports_shuttling() ? "shuttle" : "sabre";
    const Compiler compiler(device, options);
    const CompilationResult result = compiler.compile(circuit);
    EXPECT_TRUE(respects_coupling(result.final_circuit, device))
        << device.name();
    EXPECT_TRUE(Compiler::verify(result)) << device.name();
  }
}

TEST_P(SeedSweep, FusionNeverIncreasesSingleQubitCount) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 700);
  const Circuit circuit = workloads::random_circuit(4, 40, rng, 0.25);
  const CircuitMetrics before = compute_metrics(circuit);
  const CircuitMetrics after = compute_metrics(fuse_single_qubit(circuit));
  EXPECT_LE(after.single_qubit_gates, before.single_qubit_gates);
  EXPECT_EQ(after.two_qubit_gates, before.two_qubit_gates);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, testing::Range(1, 9),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// --- Workload-family sweep through the default pipeline ---

class WorkloadSweep : public testing::TestWithParam<const char*> {};

Circuit sweep_workload(const std::string& name) {
  Rng rng(55);
  if (name == "ghz6") return workloads::ghz(6);
  if (name == "qft5") return workloads::qft(5);
  if (name == "bv5") {
    return workloads::bernstein_vazirani({1, 1, 0, 1}).unitary_part();
  }
  if (name == "adder1") return workloads::cuccaro_adder(1);
  if (name == "grover3") return workloads::grover(3, 5, 2);
  if (name == "qv6") return workloads::quantum_volume(6, 2, rng);
  throw std::runtime_error("unknown workload");
}

TEST_P(WorkloadSweep, DefaultPipelineOnSurface17) {
  const Compiler compiler(devices::surface17());
  const CompilationResult result =
      compiler.compile(sweep_workload(GetParam()));
  EXPECT_TRUE(respects_coupling(result.final_circuit, devices::surface17()));
  EXPECT_TRUE(result.schedule.is_consistent_with(result.final_circuit));
  EXPECT_TRUE(Compiler::verify(result));
}

INSTANTIATE_TEST_SUITE_P(Families, WorkloadSweep,
                         testing::Values("ghz6", "qft5", "bv5", "adder1",
                                         "grover3", "qv6"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace qmap
