file(REMOVE_RECURSE
  "CMakeFiles/bench_control_constraints.dir/bench_control_constraints.cpp.o"
  "CMakeFiles/bench_control_constraints.dir/bench_control_constraints.cpp.o.d"
  "bench_control_constraints"
  "bench_control_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_control_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
