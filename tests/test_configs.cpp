// Tests that the shipped config files in configs/ load into devices that
// match the built-ins — they are generated from the library and must stay
// in sync.
#include <gtest/gtest.h>

#include "arch/builtin.hpp"
#include "arch/config.hpp"
#include "core/compiler.hpp"
#include "workloads/workloads.hpp"

namespace qmap {
namespace {

std::string config_path(const std::string& name) {
  // ctest runs from the build tree; configs live in the source tree.
  return std::string(QMAP_CONFIG_DIR) + "/" + name;
}

struct ConfigCase {
  const char* file;
  Device (*builtin)();
};

Device qdot2x5() { return devices::quantum_dot_array(2, 5); }

class ShippedConfig : public testing::TestWithParam<ConfigCase> {};

TEST_P(ShippedConfig, MatchesBuiltinDevice) {
  const ConfigCase& param = GetParam();
  const Device loaded = load_device(config_path(param.file));
  const Device builtin = param.builtin();
  EXPECT_EQ(loaded.name(), builtin.name());
  EXPECT_EQ(loaded.num_qubits(), builtin.num_qubits());
  EXPECT_EQ(loaded.coupling().num_edges(), builtin.coupling().num_edges());
  for (const auto& edge : builtin.coupling().edges()) {
    EXPECT_TRUE(loaded.coupling().connected(edge.a, edge.b));
    EXPECT_EQ(loaded.coupling().orientation_allowed(edge.a, edge.b),
              builtin.coupling().orientation_allowed(edge.a, edge.b));
  }
  EXPECT_EQ(loaded.native_two_qubit(), builtin.native_two_qubit());
  EXPECT_EQ(loaded.frequency_groups(), builtin.frequency_groups());
  EXPECT_EQ(loaded.feedlines(), builtin.feedlines());
  EXPECT_EQ(loaded.supports_shuttling(), builtin.supports_shuttling());
}

INSTANTIATE_TEST_SUITE_P(
    AllShipped, ShippedConfig,
    testing::Values(ConfigCase{"ibm_qx4.json", devices::ibm_qx4},
                    ConfigCase{"ibm_qx5.json", devices::ibm_qx5},
                    ConfigCase{"surface17.json", devices::surface17},
                    ConfigCase{"surface7.json", devices::surface7},
                    ConfigCase{"qdot2x5.json", qdot2x5}),
    [](const auto& info) {
      std::string name = info.param.file;
      name.resize(name.size() - 5);  // drop ".json"
      return name;
    });

TEST(ShippedConfig, NoisySurface17LoadsAndCompiles) {
  const Device device = load_device(config_path("surface17_noisy.json"));
  ASSERT_TRUE(device.has_noise());
  EXPECT_GT(device.noise().two_qubit_error(1, 5), 0.0);
  CompilerOptions options;
  options.placer = "reliability";
  options.router = "reliability";
  const Compiler compiler(device, options);
  const CompilationResult result = compiler.compile(workloads::ghz(4));
  EXPECT_TRUE(Compiler::verify(result));
}

}  // namespace
}  // namespace qmap
