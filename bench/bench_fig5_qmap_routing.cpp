// E5 / Fig. 5 — Qmap-style mapping of the Fig. 1 circuit onto Surface-17.
//
// The paper: "After the initial placement of qubits, gates are scheduled
// and only one SWAP is added to comply to the coupling restrictions."
// Expected shape: with a good (ILP-quality, here exhaustive) initial
// placement, the latency-aware router needs exactly one SWAP — the
// example's interaction graph has a triangle and the Surface-17 lattice is
// triangle-free, so one SWAP is both necessary and sufficient.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace {

using namespace qmap;
using namespace qmap::bench;

void print_figure() {
  const Device s17 = devices::surface17();
  const Circuit circuit = workloads::fig1_example();

  section("Fig. 5: Qmap routing of the Fig. 1 circuit on Surface-17");
  const Circuit lowered = lower_to_device(circuit, s17, /*keep_swaps=*/true);
  // Qmap finds the initial placement with an ILP that co-optimizes with
  // routing; we reproduce that by picking, among all distance-optimal
  // placements, the one that routes with the fewest SWAPs (see DESIGN.md
  // substitutions).
  const Placement initial = best_optimal_placement(lowered, s17, "qmap");
  std::cout << "initial placement (ILP-quality): " << initial.to_string()
            << "\n";

  TextTable table({"router", "swaps added", "paper", "latency cycles",
                   "runtime ms"});
  for (const char* router : {"qmap", "sabre", "astar", "naive"}) {
    const MappedOutcome outcome =
        map_and_verify(circuit, s17, router, initial);
    const Schedule schedule =
        schedule_constrained(outcome.final_circuit, s17,
                             surface_control_constraints());
    table.add_row({router, TextTable::num(outcome.routing.added_swaps),
                   std::string(router) == std::string("qmap") ? "1 SWAP" : "-",
                   TextTable::num(schedule.total_cycles()),
                   TextTable::num(outcome.routing.runtime_ms, 3)});
  }
  std::cout << table.str();

  const MappedOutcome qmap_outcome =
      map_and_verify(circuit, s17, "qmap", initial);
  std::cout << "\nrouted circuit (SWAP placeholder visible):\n";
  AsciiOptions physical;
  physical.qubit_prefix = 'Q';
  // Show only the touched region: print gate list instead of the full
  // 17-wire diagram.
  std::cout << qmap_outcome.routing.circuit.to_string();

  if (qmap_outcome.routing.added_swaps != 1) {
    std::cout << "\nNOTE: expected exactly 1 SWAP (paper), measured "
              << qmap_outcome.routing.added_swaps << "\n";
  } else {
    std::cout << "\nmatches the paper: exactly one SWAP added\n";
  }
}

void BM_QmapRouteSurface17(benchmark::State& state) {
  const Device s17 = devices::surface17();
  const Circuit lowered =
      lower_to_device(workloads::fig1_example(), s17, true);
  const Placement initial = ExhaustivePlacer().place(lowered, s17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        make_router("qmap")->route(lowered, s17, initial));
  }
}
BENCHMARK(BM_QmapRouteSurface17);

void BM_ExhaustivePlacementSurface17(benchmark::State& state) {
  const Device s17 = devices::surface17();
  const Circuit lowered =
      lower_to_device(workloads::fig1_example(), s17, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExhaustivePlacer().place(lowered, s17));
  }
}
BENCHMARK(BM_ExhaustivePlacementSurface17);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
