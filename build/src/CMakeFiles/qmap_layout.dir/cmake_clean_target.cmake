file(REMOVE_RECURSE
  "libqmap_layout.a"
)
