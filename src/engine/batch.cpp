#include "engine/batch.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/report.hpp"
#include "engine/thread_pool.hpp"

namespace qmap {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

std::size_t BatchResult::ok_count() const {
  return static_cast<std::size_t>(std::count_if(
      items.begin(), items.end(), [](const BatchItem& i) { return i.ok; }));
}

double BatchResult::total_item_ms() const {
  return std::accumulate(
      items.begin(), items.end(), 0.0,
      [](double sum, const BatchItem& i) { return sum + i.wall_ms; });
}

std::string BatchResult::report() const {
  TextTable table({"#", "circuit", "ok", "strategy", "2q gates", "cycles",
                   "wall ms"});
  for (std::size_t i = 0; i < items.size(); ++i) {
    const BatchItem& item = items[i];
    table.add_row(
        {TextTable::num(i),
         item.ok ? item.result.original.name() : std::string("-"),
         item.ok ? "yes" : "NO",
         item.winner_label.empty() ? std::string("-") : item.winner_label,
         item.ok ? TextTable::num(item.result.final_metrics.two_qubit_gates)
                 : item.error,
         item.ok ? TextTable::num(item.result.scheduled_cycles)
                 : std::string("-"),
         TextTable::num(item.wall_ms, 2)});
  }
  std::string out = table.str();
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "batch: %zu/%zu ok, wall %.2f ms (serial sum %.2f ms) on "
                "%d thread(s)\n",
                ok_count(), items.size(), wall_ms, total_item_ms(),
                num_threads);
  out += buffer;
  return out;
}

Json BatchResult::to_json() const {
  Json out;
  out["num_threads"] = Json(num_threads);
  out["wall_ms"] = Json(wall_ms);
  out["serial_sum_ms"] = Json(total_item_ms());
  out["ok"] = Json(ok_count());
  out["total"] = Json(items.size());
  JsonArray array;
  for (const BatchItem& item : items) {
    Json entry;
    entry["ok"] = Json(item.ok);
    entry["wall_ms"] = Json(item.wall_ms);
    if (!item.winner_label.empty()) {
      entry["strategy"] = Json(item.winner_label);
    }
    if (item.ok) {
      entry["result"] = item.result.to_json();
    } else {
      entry["error"] = Json(item.error);
      entry["error_class"] = Json(error_class_name(item.error_class));
    }
    array.push_back(std::move(entry));
  }
  out["items"] = Json(std::move(array));
  return out;
}

BatchCompiler::BatchCompiler(Device device, BatchOptions options)
    : device_(std::move(device)), options_(std::move(options)) {
  // Same eager validation + artifact build as the portfolio: misconfigured
  // batches fail at construction, and workers only ever read shared
  // immutable state. One bundle serves every item (and every strategy of
  // every item, when racing portfolios).
  if (options_.use_portfolio) {
    if (options_.portfolio.strategies.empty()) {
      options_.portfolio.strategies =
          PortfolioCompiler::default_portfolio(device_);
    }
  } else {
    (void)make_placer(options_.compiler.placer);
    (void)make_router(options_.compiler.router);
  }
  std::shared_ptr<const ArchArtifacts> artifacts =
      ArchArtifacts::shared(device_);
  options_.portfolio.artifacts = artifacts;
  options_.compiler.artifacts = std::move(artifacts);
}

BatchResult BatchCompiler::compile_all(
    const std::vector<Circuit>& circuits) const {
  const auto batch_start = Clock::now();
  ThreadPool pool(options_.num_threads);

  BatchResult batch;
  batch.items.resize(circuits.size());
  std::vector<std::future<void>> futures;
  futures.reserve(circuits.size());

  for (std::size_t i = 0; i < circuits.size(); ++i) {
    futures.push_back(pool.async([this, &circuits, &batch, i] {
      BatchItem& item = batch.items[i];  // disjoint slot per task
      const auto start = Clock::now();
      try {
        if (options_.use_portfolio) {
          PortfolioOptions portfolio_options = options_.portfolio;
          portfolio_options.base_seed =
              Rng::derive_stream(options_.base_seed, i);
          // The circuit-level fan-out already saturates the pool; racing
          // this circuit's strategies serially avoids oversubscription.
          portfolio_options.num_threads = 1;
          const PortfolioCompiler compiler(device_, portfolio_options);
          PortfolioResult result = compiler.compile(circuits[i]);
          item.winner_label = result.winner_label;
          item.result = std::move(result.best);
        } else {
          CompilerOptions compiler_options = options_.compiler;
          compiler_options.seed = Rng::derive_stream(options_.base_seed, i);
          const Compiler compiler(device_, compiler_options);
          item.result = compiler.compile(circuits[i]);
          item.winner_label = compiler_options.placer + "+" +
                              compiler_options.router;
        }
        item.ok = true;
      } catch (const std::exception& e) {
        // Per-item crash boundary: catches every exception type, not just
        // qmap::Error — a stage hook throwing std::bad_alloc (or any
        // third-party exception from a custom cost function) must poison
        // only its own item, never the batch.
        item.ok = false;
        item.error = e.what();
        item.error_class = classify_exception(e);
      } catch (...) {
        item.ok = false;
        item.error = "unknown exception";
        item.error_class = ErrorClass::Permanent;
      }
      item.wall_ms = ms_since(start);
    }));
  }
  for (std::future<void>& future : futures) future.get();

  batch.wall_ms = ms_since(batch_start);
  batch.num_threads = pool.size();
  return batch;
}

}  // namespace qmap
