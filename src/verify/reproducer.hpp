// Failure reproducers: dump a fuzz counterexample to disk, reload it,
// replay it.
//
// A reproducer is two sibling files: `<stem>.qasm` (the minimized failing
// circuit, ordinary OpenQASM 2.0) and `<stem>.json` (the device, the
// placer x router strategy, the run seed, the injected fault if any, and
// the recorded failure). Replaying calls exactly the fuzzer's
// run_strategy(), so a dumped failure becomes an ordinary deterministic
// unit test: load, replay, assert the same FailureKind.
//
// Seeds are serialized as decimal strings — the JSON number type is a
// double and would silently round 64-bit seeds.
#pragma once

#include <cstdint>
#include <string>

#include "arch/device.hpp"
#include "verify/fuzzer.hpp"

namespace qmap::verify {

struct Reproducer {
  Circuit circuit;
  std::string device;        // built-in device name, see device_by_name
  FuzzStrategy strategy;
  std::uint64_t seed = 0;    // run seed passed to run_strategy
  int trials = 3;
  FaultInjection fault = FaultInjection::None;
  std::string kind;          // failure_kind_name at dump time
  std::string message;       // diagnostic at dump time
};

/// Resolves a built-in device by its Device::name() string: "ibm_qx4",
/// "ibm_qx5", "surface17", "surface7", and the parametric families
/// "linear<n>", "grid<r>x<c>", "all_to_all<n>", "ion<n>", "qdot<r>x<c>".
/// Throws DeviceError for anything else.
[[nodiscard]] Device device_by_name(const std::string& name);

/// Writes `<dir>/<stem>.qasm` and `<dir>/<stem>.json` (directory created
/// if missing). Returns the JSON path.
std::string save_reproducer(const Reproducer& repro, const std::string& dir,
                            const std::string& stem);

/// Loads a reproducer from its JSON path; the QASM file is resolved
/// relative to the JSON's directory.
[[nodiscard]] Reproducer load_reproducer(const std::string& json_path);

/// Re-runs the recorded compile + checks. A genuine reproducer returns
/// the same FailureKind it was dumped with.
[[nodiscard]] RunOutcome replay(const Reproducer& repro);

}  // namespace qmap::verify
