#include "route/token_swap.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace qmap {

std::size_t TokenSwapPlan::total_swaps() const {
  std::size_t total = 0;
  for (const SwapRound& round : rounds) total += round.size();
  return total;
}

namespace {

int hop_distance(const Device& device, const ArchArtifacts* artifacts, int a,
                 int b) {
  return artifacts != nullptr ? artifacts->distance(a, b)
                              : device.coupling().distance(a, b);
}

std::vector<int> hop_path(const Device& device, const ArchArtifacts* artifacts,
                          int a, int b) {
  return artifacts != nullptr ? artifacts->shortest_path(a, b)
                              : device.coupling().shortest_path(a, b);
}

std::pair<int, int> ordered(int a, int b) {
  return {std::min(a, b), std::max(a, b)};
}

}  // namespace

TokenSwapPlan plan_token_swaps(const Placement& current,
                               const Placement& target, const Device& device,
                               const ArchArtifacts* artifacts,
                               int escape_budget) {
  const int n = device.num_qubits();
  if (current.num_physical_qubits() != n ||
      target.num_physical_qubits() != n ||
      current.num_program_qubits() != target.num_program_qubits()) {
    throw MappingError(
        "token swap: current/target placements disagree with the device");
  }
  if (!device.coupling().is_connected()) {
    throw MappingError("token swap: device coupling graph is disconnected");
  }

  TokenSwapPlan plan;
  Placement place = current;
  const int num_program = current.num_program_qubits();

  // Home of the token on physical qubit p, or -1 for a don't-care free wire.
  const auto goal_of = [&](int p) {
    const int wire = place.wire_at_phys(p);
    return wire < num_program ? target.phys_of_wire(wire) : -1;
  };
  const auto first_misplaced = [&] {
    for (int p = 0; p < n; ++p) {
      const int goal = goal_of(p);
      if (goal >= 0 && goal != p) return p;
    }
    return -1;
  };
  // Reduction in total program-token distance if (a, b) swap now.
  const auto swap_gain = [&](int a, int b) {
    const int goal_a = goal_of(a);
    const int goal_b = goal_of(b);
    int gain = 0;
    if (goal_a >= 0) {
      gain += hop_distance(device, artifacts, a, goal_a) -
              hop_distance(device, artifacts, b, goal_a);
    }
    if (goal_b >= 0) {
      gain += hop_distance(device, artifacts, b, goal_b) -
              hop_distance(device, artifacts, a, goal_b);
    }
    return gain;
  };

  // Phases 1 + 2. Every greedy round strictly reduces the total distance
  // and escapes never increase it, so the loop terminates; the escape
  // budget bounds time spent before conceding to the fallback.
  int consecutive_escapes = 0;
  if (escape_budget < 0) escape_budget = 2 * n + 4;
  while (first_misplaced() >= 0) {
    SwapRound round;
    std::vector<bool> used(static_cast<std::size_t>(n), false);
    for (;;) {
      int best_gain = 0;
      int best_a = -1;
      int best_b = -1;
      for (const auto& edge : device.coupling().edges()) {
        if (used[static_cast<std::size_t>(edge.a)] ||
            used[static_cast<std::size_t>(edge.b)]) {
          continue;
        }
        const int gain = swap_gain(edge.a, edge.b);
        if (gain > best_gain) {
          best_gain = gain;
          best_a = edge.a;
          best_b = edge.b;
        }
      }
      if (best_a < 0) break;
      round.push_back(ordered(best_a, best_b));
      used[static_cast<std::size_t>(best_a)] = true;
      used[static_cast<std::size_t>(best_b)] = true;
      place.apply_swap(best_a, best_b);
    }
    if (!round.empty()) {
      plan.greedy_swaps += round.size();
      plan.rounds.push_back(std::move(round));
      consecutive_escapes = 0;
      continue;
    }
    if (++consecutive_escapes > escape_budget) break;
    const int stuck = first_misplaced();
    const std::vector<int> path =
        hop_path(device, artifacts, stuck, goal_of(stuck));
    // stuck is misplaced, so the path has at least two vertices. The hop
    // has gain exactly 0: our token gets 1 closer, and a positive net gain
    // would have been taken by the greedy sweep above.
    const int hop = path[1];
    plan.rounds.push_back({ordered(stuck, hop)});
    ++plan.escape_swaps;
    place.apply_swap(stuck, hop);
  }

  if (first_misplaced() < 0) return plan;

  // Phase 3: BFS spanning tree rooted at 0, then home tokens deepest-first.
  // When vertex v is processed every deeper vertex is settled, so v is a
  // leaf of the still-alive tree and routing its token along the tree path
  // never disturbs a settled vertex. Homes the full bijection (free wires
  // included) — stricter than required, but trivially terminating.
  std::vector<int> parent(static_cast<std::size_t>(n), -1);
  std::vector<int> depth(static_cast<std::size_t>(n), 0);
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::vector<int> bfs{0};
  seen[0] = true;
  for (std::size_t head = 0; head < bfs.size(); ++head) {
    const int v = bfs[head];
    for (const int w : device.coupling().neighbors(v)) {
      if (seen[static_cast<std::size_t>(w)]) continue;
      seen[static_cast<std::size_t>(w)] = true;
      parent[static_cast<std::size_t>(w)] = v;
      depth[static_cast<std::size_t>(w)] = depth[static_cast<std::size_t>(v)] + 1;
      bfs.push_back(w);
    }
  }
  const auto tree_path = [&](int s, int t) {
    std::vector<int> up;
    std::vector<int> down;
    int x = s;
    int y = t;
    while (depth[static_cast<std::size_t>(x)] >
           depth[static_cast<std::size_t>(y)]) {
      up.push_back(x);
      x = parent[static_cast<std::size_t>(x)];
    }
    while (depth[static_cast<std::size_t>(y)] >
           depth[static_cast<std::size_t>(x)]) {
      down.push_back(y);
      y = parent[static_cast<std::size_t>(y)];
    }
    while (x != y) {
      up.push_back(x);
      x = parent[static_cast<std::size_t>(x)];
      down.push_back(y);
      y = parent[static_cast<std::size_t>(y)];
    }
    up.push_back(x);
    up.insert(up.end(), down.rbegin(), down.rend());
    return up;  // s .. t inclusive
  };

  std::vector<int> by_depth = bfs;
  std::stable_sort(by_depth.begin(), by_depth.end(), [&](int a, int b) {
    return depth[static_cast<std::size_t>(a)] >
           depth[static_cast<std::size_t>(b)];
  });
  for (const int v : by_depth) {
    const int wire = target.wire_at_phys(v);
    const int s = place.phys_of_wire(wire);
    if (s == v) continue;
    const std::vector<int> path = tree_path(s, v);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      plan.rounds.push_back({ordered(path[i], path[i + 1])});
      ++plan.fallback_swaps;
      place.apply_swap(path[i], path[i + 1]);
    }
  }
  return plan;
}

TokenSwapCleanup plan_token_swap_cleanup(Placement& current,
                                         const Placement& target,
                                         const Device& device,
                                         const ArchArtifacts* artifacts) {
  const TokenSwapPlan plan =
      plan_token_swaps(current, target, device, artifacts);
  TokenSwapCleanup cleanup;
  cleanup.rounds = plan.rounds.size();
  cleanup.swaps.reserve(plan.total_swaps());
  // position_of[p]: where the wire sitting on p before the cleanup ends up
  // once all rounds have run; content_at is its running inverse.
  cleanup.position_of.resize(static_cast<std::size_t>(device.num_qubits()));
  std::vector<int> content_at(cleanup.position_of.size());
  std::iota(cleanup.position_of.begin(), cleanup.position_of.end(), 0);
  std::iota(content_at.begin(), content_at.end(), 0);
  for (const SwapRound& round : plan.rounds) {
    for (const auto& [a, b] : round) {
      cleanup.swaps.push_back(make_gate(GateKind::SWAP, {a, b}));
      current.apply_swap(a, b);
      const int x = content_at[static_cast<std::size_t>(a)];
      const int y = content_at[static_cast<std::size_t>(b)];
      std::swap(content_at[static_cast<std::size_t>(a)],
                content_at[static_cast<std::size_t>(b)]);
      cleanup.position_of[static_cast<std::size_t>(x)] = b;
      cleanup.position_of[static_cast<std::size_t>(y)] = a;
    }
  }
  return cleanup;
}

}  // namespace qmap
