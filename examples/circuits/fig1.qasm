// The paper's Fig. 1 running example: a 4-qubit circuit whose CNOT(q2, q3)
// is exactly the orientation IBM QX4 forbids, so mapping must add SWAPs
// and direction fixes (Sec. IV).
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[0];
h q[2];
cx q[2], q[3];
t q[1];
cx q[0], q[1];
h q[3];
cx q[1], q[2];
t q[0];
cx q[0], q[2];
cx q[2], q[3];
