// CompileContext: the state a pipeline of passes evolves, plus the
// immutable per-device artifacts every pass reads.
//
// Also home of CompilationResult — the pipeline's product — which predates
// the pass layer (it used to live in core/compiler.hpp; core re-exports it,
// so existing includes keep working).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/artifacts.hpp"
#include "arch/device.hpp"
#include "common/json.hpp"
#include "ir/circuit.hpp"
#include "ir/metrics.hpp"
#include "layout/placement.hpp"
#include "obs/obs.hpp"
#include "route/router.hpp"
#include "schedule/schedule.hpp"

namespace qmap {

class CancelToken;  // engine/cancel.hpp

struct CompilationResult {
  Circuit original;        // input, program qubits
  Circuit lowered;         // after decomposition (program qubits)
  RoutingResult routing;   // physical qubits, SWAP placeholders
  Circuit final_circuit;   // native gate set, coupling-legal
  Schedule schedule;       // empty unless a schedule pass ran
  CircuitMetrics original_metrics;
  CircuitMetrics final_metrics;
  /// Latency of the lowered-but-unrouted circuit, dependencies only —
  /// the paper's "before mapping" baseline (Sec. V).
  int baseline_cycles = 0;
  /// Latency of the final scheduled circuit (0 unless scheduled).
  int scheduled_cycles = 0;

  [[nodiscard]] double latency_ratio() const {
    return baseline_cycles > 0
               ? static_cast<double>(scheduled_cycles) / baseline_cycles
               : 0.0;
  }
  [[nodiscard]] std::string report() const;

  /// Machine-readable report (for toolchain integration / CI dashboards):
  /// metrics before/after, routing statistics, placements, latency.
  [[nodiscard]] Json to_json() const;

  /// Deterministic digest of everything observable about the result —
  /// final gate stream, placements, routing statistics, metrics, latency.
  /// Two results with equal fingerprints went through byte-identical
  /// pipelines; the pass-layer parity tests pin facade-vs-spec equality
  /// with it. Timing fields (runtime_ms) are excluded.
  [[nodiscard]] std::string fingerprint() const;
};

/// Everything a pipeline run needs besides the circuit and device: seed,
/// cancellation, hooks, observability, and the shared device artifacts.
/// Plain data; copy one per run.
struct PipelineRuntime {
  /// Seed for stochastic passes (annealing placer). The portfolio engine
  /// derives a distinct stream per strategy so parallel runs reproduce.
  std::uint64_t seed = 0xC0FFEE;
  /// Cooperative cancellation (engine/cancel.hpp): checked at stage
  /// boundaries and inside placer/router main loops. Not owned; may be null.
  const CancelToken* cancel = nullptr;
  /// Instrumentation/fault-injection hook called at stage boundaries with
  /// the pass's name() ("placer", "router", "postroute", "schedule" in the
  /// standard pipeline), before the named stage runs. An exception thrown
  /// from the hook aborts the compile exactly like a crash inside the
  /// stage, which is how the resilience fault injector plants
  /// deterministic crashes without patching any pass.
  std::function<void(const char* stage)> stage_hook;
  /// Observability sink (obs/): a compile span with one child span per
  /// stage-boundary pass, plus router/scheduler counters. Not owned; null
  /// (the default) disables recording at the cost of one pointer compare.
  obs::Observer* obs = nullptr;
  /// Explicit parent for the compile span — used when the pipeline runs on
  /// a pool worker but belongs under a span opened on another thread (the
  /// portfolio race root). 0 = the calling thread's innermost open span.
  std::uint64_t obs_parent_span = 0;
  /// Immutable shared device artifacts. Null = CompileContext builds a
  /// private copy on construction; pass ArchArtifacts::shared(device) to
  /// amortize across runs (the portfolio engine builds it once per race).
  std::shared_ptr<const ArchArtifacts> artifacts;
};

/// The evolving state of one pipeline run. Passes are the writers: the
/// result, the working placement, and the stage flags are public by
/// design. The input circuit, device, and runtime are read-only.
class CompileContext {
 public:
  /// Binds the run to `circuit` and `device` (neither owned; both must
  /// outlive the context) and seeds result.original/lowered so a pipeline
  /// without a decompose pass still has a well-defined lowered circuit.
  CompileContext(const Circuit& circuit, const Device& device,
                 PipelineRuntime runtime);

  [[nodiscard]] const Circuit& input() const noexcept { return *input_; }
  [[nodiscard]] const Device& device() const noexcept { return *device_; }
  [[nodiscard]] const PipelineRuntime& runtime() const noexcept {
    return runtime_;
  }
  [[nodiscard]] const ArchArtifacts& artifacts() const noexcept {
    return *runtime_.artifacts;
  }
  [[nodiscard]] const std::shared_ptr<const ArchArtifacts>& artifacts_ptr()
      const noexcept {
    return runtime_.artifacts;
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return runtime_.seed; }
  [[nodiscard]] obs::Observer* obs() const noexcept { return runtime_.obs; }
  [[nodiscard]] const CancelToken* cancel() const noexcept {
    return runtime_.cancel;
  }
  /// Throws CancelledError when the run's token has been cancelled.
  void checkpoint() const;

  // --- Evolving state (written by passes) ---

  CompilationResult result;
  /// Working placement between the place and route passes.
  Placement placement;
  bool placed = false;
  bool routed = false;
  bool postrouted = false;

  /// Per-pass wall-clock timings, appended by the PassManager in pipeline
  /// order (every pass, boundary or not).
  struct PassTiming {
    std::string pass;
    double ms = 0.0;
  };
  std::vector<PassTiming> timings;

 private:
  const Circuit* input_;
  const Device* device_;
  PipelineRuntime runtime_;
};

}  // namespace qmap
