// Resilient front-door walkthrough: compile with a wall-clock deadline and
// a fallback ladder, then arm the fault injector and watch the same call
// degrade gracefully instead of failing. Three acts:
//
//   1. a healthy compile under a deadline (portfolio rung wins);
//   2. a probability-1.0 placer fault on the portfolio rung — the ladder
//      falls back and still returns a ValidityChecker-clean mapping;
//   3. an admission rejection (circuit wider than the device) that costs
//      no compute at all.
//
// Exits non-zero unless every returned result is validated.
#include <iostream>

#include "arch/builtin.hpp"
#include "resilience/resilience.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace qmap;

  const Device device = devices::surface17();
  const Circuit circuit = workloads::qft(5);

  // --- Act 1: healthy request under a deadline ----------------------------
  resilience::Policy policy;
  policy.deadline_ms = 2000;  // whole-ladder budget; rung 2 is exempt
  policy.seed = 0xC0FFEE;

  std::cout << "compiling " << circuit.name() << " on " << device.name()
            << " with a " << policy.deadline_ms << " ms deadline...\n\n";
  resilience::CompileOutcome outcome =
      resilience::compile(circuit, device, policy);
  std::cout << outcome.report() << "\n";
  if (!outcome.ok || !outcome.validated) {
    std::cerr << "healthy compile did not produce a validated result\n";
    return 1;
  }

  // --- Act 2: sabotage the portfolio rung, survive anyway -----------------
  resilience::Policy hostile = policy;
  resilience::FaultSpec fault;
  fault.point = "throw-in-placer";
  fault.rung = 0;          // only attack the portfolio race
  fault.probability = 1.0; // every placer call on that rung throws
  hostile.faults.push_back(fault);

  std::cout << "re-running with '" << fault.point
            << "' armed at probability 1.0 on rung 0...\n\n";
  outcome = resilience::compile(circuit, device, hostile);
  std::cout << outcome.report() << "\n";
  if (!outcome.ok || !outcome.validated) {
    std::cerr << "ladder failed to recover from the injected fault\n";
    return 1;
  }
  std::cout << "degraded=" << (outcome.degraded() ? "yes" : "no")
            << " (answer came from rung " << outcome.rung << ", "
            << outcome.winner_label << ")\n\n";

  // --- Act 3: hopeless requests are rejected before any compute ----------
  const Circuit too_wide = workloads::ghz(device.num_qubits() + 3);
  outcome = resilience::compile(too_wide, device, policy);
  if (outcome.ok || outcome.admission.admitted()) {
    std::cerr << "oversized circuit should have been rejected at admission\n";
    return 1;
  }
  std::cout << "admission rejected " << too_wide.name() << ": "
            << outcome.error << "\n\n";

  std::cout << "telemetry JSON for the degraded compile is one dump away:\n"
            << "  outcome.to_json().dump(2)\n";
  return 0;
}
