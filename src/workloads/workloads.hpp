// Benchmark workloads.
//
// `fig1_example` reconstructs the paper's running example (Fig. 1): the
// figure itself is not machine-readable, so the circuit is chosen to be
// consistent with every statement the text makes about it — 4 program
// qubits; single-qubit H/T dressing (Fig. 1(a)) over a CNOT skeleton
// (Fig. 1(b)); the first CNOT has (paper-notation) q3 as control and q4 as
// target, which under the trivial placement is *not* executable on IBM QX4
// (Sec. IV); and its interaction graph contains a triangle, so a routing
// SWAP is unavoidable on the triangle-free Surface-17 lattice (one SWAP
// suffices, matching Fig. 5). Paper qubits are 1-indexed (q1..q4); ours are
// 0-indexed (q0..q3).
//
// The remaining generators are the standard mapping-benchmark families
// used throughout the prior work surveyed in Sec. III-B.
#pragma once

#include "common/rng.hpp"
#include "ir/circuit.hpp"

namespace qmap::workloads {

/// The paper's Fig. 1(a) running example (reconstruction, see above).
[[nodiscard]] Circuit fig1_example();

/// Fig. 1(b): the CNOT skeleton of the example (single-qubit gates removed,
/// exactly as the paper does for the mapping discussion).
[[nodiscard]] Circuit fig1_skeleton();

/// n-qubit GHZ preparation: H + CNOT chain.
[[nodiscard]] Circuit ghz(int n);

/// n-qubit quantum Fourier transform (controlled-phase ladder); the final
/// reversal SWAPs are included when `with_swaps` is set.
[[nodiscard]] Circuit qft(int n, bool with_swaps = true);

/// Bernstein-Vazirani with the given secret bitstring (LSB = qubit 0);
/// uses n data qubits plus one ancilla.
[[nodiscard]] Circuit bernstein_vazirani(const std::vector<int>& secret);

/// Cuccaro ripple-carry adder on two n-bit registers (2n+2 qubits).
[[nodiscard]] Circuit cuccaro_adder(int n);

/// Grover search on n in {2, 3} data qubits marking `marked` (basis index).
[[nodiscard]] Circuit grover(int n, int marked, int iterations = 1);

/// Random circuit: `num_gates` gates, a `two_qubit_fraction` of which are
/// CNOTs on random distinct pairs; the rest are random single-qubit
/// rotations.
[[nodiscard]] Circuit random_circuit(int n, int num_gates, Rng& rng,
                                     double two_qubit_fraction = 0.4);

/// Random Clifford-only circuit (H/S/Sdg/X/Y/Z/SX single-qubit gates;
/// CX/CZ/SWAP on random distinct pairs). Clifford circuits verify exactly
/// via the stabilizer tableau at any width, so these are the workload of
/// choice for fuzzing wide devices where state-vector checks are too slow.
[[nodiscard]] Circuit random_clifford_circuit(int n, int num_gates, Rng& rng,
                                              double two_qubit_fraction = 0.4);

/// Quantum-volume-style model circuit: `depth` layers, each pairing the
/// qubits at random and applying a random SU(4)-ish block (3 CNOTs dressed
/// with random single-qubit rotations).
[[nodiscard]] Circuit quantum_volume(int n, int depth, Rng& rng);

/// QAOA MaxCut ansatz: `layers` rounds of per-edge ZZ phase separators
/// (CX - Rz - CX) followed by the Rx mixer; `edges` is the problem graph.
/// Diagonal-heavy and commutation-rich — the NISQ workload family the
/// introduction's variational-era framing targets.
[[nodiscard]] Circuit qaoa_maxcut(int n,
                                  const std::vector<std::pair<int, int>>& edges,
                                  int layers, Rng& rng);

/// Deutsch-Jozsa with a balanced inner-product oracle given by `mask`
/// (n data qubits + 1 ancilla); an all-zero mask is the constant oracle.
[[nodiscard]] Circuit deutsch_jozsa(const std::vector<int>& mask);

/// n-qubit W state |100..0> + |010..0> + ... (equal superposition of
/// one-hot strings) via the cascade of controlled rotations.
[[nodiscard]] Circuit w_state(int n);

/// Quantum phase estimation of the phase gate P(2*pi*phase) on one target
/// qubit with `precision_bits` counting qubits (includes the inverse QFT).
[[nodiscard]] Circuit phase_estimation(int precision_bits, double phase);

}  // namespace qmap::workloads
