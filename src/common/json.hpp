// Minimal JSON value type + recursive-descent parser + serializer.
//
// Qmap-style mappers (Sec. V of the paper) read the device description from
// a configuration file; this module provides the parser for those configs.
// It supports the full JSON grammar except \u escapes beyond Latin-1.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/error.hpp"

namespace qmap {

class Json;

using JsonArray = std::vector<Json>;
/// std::map keeps keys ordered which makes serialization deterministic.
using JsonObject = std::map<std::string, Json>;

/// A dynamically typed JSON value with value semantics.
class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::size_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  [[nodiscard]] Type type() const;
  [[nodiscard]] bool is_null() const { return type() == Type::Null; }
  [[nodiscard]] bool is_bool() const { return type() == Type::Bool; }
  [[nodiscard]] bool is_number() const { return type() == Type::Number; }
  [[nodiscard]] bool is_string() const { return type() == Type::String; }
  [[nodiscard]] bool is_array() const { return type() == Type::Array; }
  [[nodiscard]] bool is_object() const { return type() == Type::Object; }

  /// Checked accessors; throw ParseError on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] int as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] const JsonObject& as_object() const;
  [[nodiscard]] JsonArray& as_array();
  [[nodiscard]] JsonObject& as_object();

  /// Object lookup; throws if not an object or key missing.
  [[nodiscard]] const Json& at(const std::string& key) const;
  /// Object lookup with default.
  [[nodiscard]] const Json* find(const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const;
  /// Array element; throws on bad index.
  [[nodiscard]] const Json& at(std::size_t index) const;
  [[nodiscard]] std::size_t size() const;

  /// Mutable object insertion (creates object if null).
  Json& operator[](const std::string& key);

  /// Parse a complete JSON document. Throws ParseError.
  [[nodiscard]] static Json parse(std::string_view text);

  /// Serialize. `indent` < 0 means compact single-line output.
  [[nodiscard]] std::string dump(int indent = -1) const;

  friend bool operator==(const Json& a, const Json& b) {
    return a.value_ == b.value_;
  }

 private:
  void dump_impl(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value_;
};

}  // namespace qmap
