// BRIDGE-aware lookahead router ("On the qubit routing problem", Cowtan
// et al.): SABRE's front-layer/extended-window heuristic, except that a
// front-layer CX whose operands sit at distance exactly 2 may execute in
// place as a 4-CX BRIDGE template
//
//     CX(c,t) = CX(c,m) CX(m,t) CX(c,m) CX(m,t)   (m = the middle qubit)
//
// which satisfies the coupling graph without touching the placement. The
// router bridges such a gate when the best candidate SWAP buys nothing for
// the *rest* of the front layer and the lookahead window — i.e. moving the
// gate's qubits has no side benefit beyond the gate itself — and otherwise
// falls back to SWAP insertion, so qubits still migrate toward clusters of
// future interactions.
#pragma once

#include "route/router.hpp"

namespace qmap {

class BridgeRouter final : public Router {
 public:
  struct Options {
    int extended_window = 20;      // lookahead: # future 2q gates scored
    double extended_weight = 0.5;  // weight of the lookahead term
    double decay_increment = 0.1;  // per-use decay added to a qubit
    int decay_reset_interval = 5;  // SWAPs between decay resets
  };

  BridgeRouter() = default;
  explicit BridgeRouter(const Options& options) : options_(options) {}

  [[nodiscard]] std::string name() const override { return "bridge"; }
  [[nodiscard]] RoutingResult route(const Circuit& circuit,
                                    const Device& device,
                                    const Placement& initial) override;

  [[nodiscard]] bool supports_streaming() const override { return true; }
  StreamRouteStats route_stream(GateSource& source, const Device& device,
                                const Placement& initial, GateSink& sink,
                                const StreamRouteOptions& options) override;

 private:
  Options options_;
};

}  // namespace qmap
