// Reliability-aware mapping: "minimize the error rate by choosing the most
// reliable paths" (Sec. III-B, [45]-[47], [50]).
//
// Both components share the reliability-weighted distance matrix: the cost
// of moving two qubits together along a path is the sum of SWAP log-error
// costs along it (Dijkstra over edges weighted by -3*log(1 - e_edge)), so
// a longer path through well-calibrated couplers can beat a short path
// through a noisy one.
#pragma once

#include <vector>

#include "arch/device.hpp"
#include "layout/placers.hpp"
#include "route/router.hpp"

namespace qmap {

/// All-pairs reliability-weighted distances over the coupling graph.
class ReliabilityDistance {
 public:
  /// Throws DeviceError when the device has no noise model.
  explicit ReliabilityDistance(const Device& device);

  /// Accumulated SWAP log-error cost of the cheapest path from a to b.
  [[nodiscard]] double cost(int a, int b) const;
  /// -log(1 - e) of executing one two-qubit gate on the *edge* (a, b).
  [[nodiscard]] double edge_gate_cost(int a, int b) const;
  [[nodiscard]] double swap_cost(int a, int b) const;

 private:
  int num_qubits_ = 0;
  std::vector<double> cost_;       // row-major all-pairs
  const Device* device_;
};

/// Greedy placer over reliability-weighted distances: interacting program
/// qubits land on well-connected, well-calibrated regions.
class ReliabilityPlacer final : public Placer {
 public:
  [[nodiscard]] std::string name() const override { return "reliability"; }
  [[nodiscard]] Placement place(const Circuit& circuit,
                                const Device& device) override;
};

/// SABRE-style router whose objective is the accumulated log-error cost:
/// candidate SWAPs pay their own log-error and are scored by the
/// reliability-weighted distances of the front layer (+ lookahead).
class ReliabilityRouter final : public Router {
 public:
  struct Options {
    int extended_window = 20;
    double extended_weight = 0.5;
    double decay_increment = 0.1;
    int decay_reset_interval = 5;
  };

  ReliabilityRouter() = default;
  explicit ReliabilityRouter(const Options& options) : options_(options) {}

  [[nodiscard]] std::string name() const override { return "reliability"; }
  [[nodiscard]] RoutingResult route(const Circuit& circuit,
                                    const Device& device,
                                    const Placement& initial) override;

 private:
  Options options_;
};

}  // namespace qmap
