#include "route/astar_layer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <queue>

#include "common/error.hpp"

namespace qmap {
namespace {

/// ASAP layering: gate -> layer index such that every gate sits one layer
/// after the latest gate it depends on (barriers force a full cut).
std::vector<std::vector<int>> build_layers(const Circuit& circuit) {
  std::vector<int> qubit_layer(static_cast<std::size_t>(circuit.num_qubits()),
                               -1);
  std::vector<std::vector<int>> layers;
  for (std::size_t i = 0; i < circuit.size(); ++i) {
    const Gate& gate = circuit.gate(i);
    int layer = 0;
    for (const int q : gate.qubits) {
      layer = std::max(layer, qubit_layer[static_cast<std::size_t>(q)] + 1);
    }
    if (gate.kind == GateKind::Barrier) {
      // Anything after the barrier starts on a fresh layer.
      for (int& l : qubit_layer) l = std::max(l, layer);
    }
    for (const int q : gate.qubits) {
      qubit_layer[static_cast<std::size_t>(q)] = layer;
    }
    if (static_cast<std::size_t>(layer) >= layers.size()) {
      layers.resize(static_cast<std::size_t>(layer) + 1);
    }
    layers[static_cast<std::size_t>(layer)].push_back(static_cast<int>(i));
  }
  return layers;
}

struct SearchNode {
  std::vector<int> program_to_phys;
  int parent = -1;
  int swap_a = -1;
  int swap_b = -1;
  int g = 0;
};

}  // namespace

RoutingResult AStarLayerRouter::route(const Circuit& circuit,
                                      const Device& device,
                                      const Placement& initial) {
  const auto start_time = std::chrono::steady_clock::now();
  check_routable(circuit, device);
  const CouplingGraph& coupling = device.coupling();
  const std::vector<std::vector<int>> layers = build_layers(circuit);
  RoutingEmitter emitter(device, initial,
                         circuit.name() + "@" + device.name());
  const int n = circuit.num_qubits();

  // Two-qubit gates of one layer as program-qubit pairs.
  const auto layer_pairs = [&](std::size_t layer_index) {
    std::vector<std::pair<int, int>> pairs;
    if (layer_index >= layers.size()) return pairs;
    for (const int node : layers[layer_index]) {
      const Gate& gate = circuit.gate(static_cast<std::size_t>(node));
      if (gate.is_two_qubit()) {
        pairs.emplace_back(gate.qubits[0], gate.qubits[1]);
      }
    }
    return pairs;
  };

  const auto pairs_distance_sum =
      [&](const std::vector<std::pair<int, int>>& pairs,
          const std::vector<int>& program_to_phys) {
        int sum = 0;
        for (const auto& [a, b] : pairs) {
          sum += phys_distance(
                     device, program_to_phys[static_cast<std::size_t>(a)],
                     program_to_phys[static_cast<std::size_t>(b)]) -
                 1;
        }
        return sum;
      };

  std::uint64_t total_expansions = 0;
  std::uint64_t fallback_layers = 0;

  for (std::size_t layer_index = 0; layer_index < layers.size();
       ++layer_index) {
    const std::vector<std::pair<int, int>> pairs = layer_pairs(layer_index);

    // Current program -> physical map.
    std::vector<int> current(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
      current[static_cast<std::size_t>(k)] =
          emitter.placement().phys_of_program(k);
    }

    if (!pairs.empty() && pairs_distance_sum(pairs, current) > 0) {
      // A* over placements to make the whole layer executable.
      std::vector<std::pair<int, int>> lookahead_pairs;
      for (int ahead = 1; ahead <= options_.lookahead_layers; ++ahead) {
        const auto next = layer_pairs(layer_index + static_cast<std::size_t>(ahead));
        lookahead_pairs.insert(lookahead_pairs.end(), next.begin(),
                               next.end());
      }
      const auto heuristic = [&](const std::vector<int>& program_to_phys) {
        const int base = pairs_distance_sum(pairs, program_to_phys);
        double h = std::ceil(static_cast<double>(base) / 2.0);
        if (options_.lookahead_weight > 0.0 && !lookahead_pairs.empty()) {
          h += options_.lookahead_weight *
               pairs_distance_sum(lookahead_pairs, program_to_phys);
        }
        return h;
      };

      std::vector<SearchNode> arena;
      arena.push_back(SearchNode{current, -1, -1, -1, 0});
      using QueueEntry = std::pair<double, int>;  // (f, arena index)
      std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                          std::greater<>>
          open;
      open.emplace(heuristic(current), 0);
      std::map<std::vector<int>, int> best_g;
      best_g[current] = 0;

      int goal = -1;
      std::size_t expansions = 0;
      while (!open.empty()) {
        check_cancelled();
        const auto [f, index] = open.top();
        open.pop();
        const SearchNode node = arena[static_cast<std::size_t>(index)];
        const auto seen = best_g.find(node.program_to_phys);
        if (seen != best_g.end() && seen->second < node.g) continue;
        if (pairs_distance_sum(pairs, node.program_to_phys) == 0) {
          goal = index;
          break;
        }
        if (++expansions > options_.max_expansions) break;
        ++total_expansions;
        for (const auto& edge : coupling.edges()) {
          std::vector<int> next = node.program_to_phys;
          for (int& phys : next) {
            if (phys == edge.a) phys = edge.b;
            else if (phys == edge.b) phys = edge.a;
          }
          const int g = node.g + 1;
          const auto it = best_g.find(next);
          if (it != best_g.end() && it->second <= g) continue;
          best_g[next] = g;
          arena.push_back(SearchNode{std::move(next), index, edge.a, edge.b, g});
          open.emplace(g + heuristic(arena.back().program_to_phys),
                       static_cast<int>(arena.size() - 1));
        }
      }

      if (goal >= 0) {
        // Reconstruct and emit the SWAP chain.
        std::vector<std::pair<int, int>> swaps;
        for (int index = goal; arena[static_cast<std::size_t>(index)].parent >= 0;
             index = arena[static_cast<std::size_t>(index)].parent) {
          swaps.emplace_back(arena[static_cast<std::size_t>(index)].swap_a,
                             arena[static_cast<std::size_t>(index)].swap_b);
        }
        std::reverse(swaps.begin(), swaps.end());
        for (const auto& [a, b] : swaps) emitter.emit_swap(a, b);
      } else {
        ++fallback_layers;
        // Budget exhausted: fall back to shortest-path walking per pair.
        for (const auto& [qa, qb] : pairs) {
          const int pa = emitter.placement().phys_of_program(qa);
          const int pb = emitter.placement().phys_of_program(qb);
          const std::vector<int> path = phys_shortest_path(device, pa, pb);
          for (std::size_t i = 0; i + 2 < path.size(); ++i) {
            emitter.emit_swap(path[i], path[i + 1]);
          }
        }
      }
    }

    for (const int node : layers[layer_index]) {
      emitter.emit_program_gate(circuit.gate(static_cast<std::size_t>(node)));
    }
  }

  const double runtime_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_time)
          .count();
  RoutingResult result = std::move(emitter).finish(initial, runtime_ms);
  obs::add(observer(), "astar.routes");
  obs::add(observer(), "astar.expansions", total_expansions);
  obs::add(observer(), "astar.fallback_layers", fallback_layers);
  obs::observe(observer(), "route.swaps_inserted",
               static_cast<double>(result.added_swaps));
  return result;
}

}  // namespace qmap
