#include "ir/gate_stream.hpp"

#include <algorithm>

namespace qmap {

std::size_t CircuitSource::pull(std::vector<Gate>& out,
                                std::size_t max_gates) {
  const std::size_t remaining = circuit_->size() - cursor_;
  const std::size_t take = std::min(max_gates, remaining);
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back(circuit_->gate(cursor_ + i));
  }
  cursor_ += take;
  return take;
}

CircuitSink::CircuitSink(int num_qubits, std::string name)
    : circuit_(num_qubits, std::move(name)) {}

void CircuitSink::put_chunk(std::vector<Gate>& gates) {
  circuit_.reserve(circuit_.size() + gates.size());
  for (Gate& gate : gates) circuit_.add_unchecked(std::move(gate));
}

void CountingSink::put(Gate gate) {
  ++total_;
  if (gate.is_two_qubit()) ++two_qubit_;
}

void CountingSink::put_chunk(std::vector<Gate>& gates) {
  total_ += gates.size();
  for (const Gate& gate : gates) {
    if (gate.is_two_qubit()) ++two_qubit_;
  }
}

}  // namespace qmap
