// Admission control: reject or down-tier a compile request *before*
// spending compute on it.
//
// A mapping service (the paper's Fig. 2 pipeline behind an API) must not
// let one pathological request — a 10^7-gate circuit, a width beyond the
// device, a deadline too tight to race a portfolio — monopolize the worker
// pool and starve its neighbours. The AdmissionGuard runs structured
// validation plus coarse resource budgeting on the request and returns one
// of three verdicts:
//
//   Admit    — run the full fallback ladder starting at the portfolio rung;
//   DownTier — skip the portfolio race and start at the cheaper
//              single-strategy rung (the circuit fits the device but a
//              full race would blow the memory or wall-clock budget);
//   Reject   — the request can never succeed (wider than the device,
//              malformed gates) or exceeds hard budgets; fail fast with a
//              structured reason list instead of timing out later.
//
// Every reason names the offending quantity and both sides of the
// comparison, so a rejected caller knows what to shrink.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "arch/device.hpp"
#include "common/json.hpp"
#include "ir/circuit.hpp"
#include "ir/metrics.hpp"

namespace qmap::resilience {

/// Hard and soft budgets for one compile request. Zero means "no limit"
/// everywhere.
struct ResourceBudget {
  /// Hard cap on circuit width (qubits). The device width is always an
  /// implicit cap on top of this.
  int max_qubits = 0;
  /// Hard cap on gate count.
  std::size_t max_gates = 200000;
  /// Hard cap on circuit depth (unit-duration critical path).
  int max_depth = 100000;
  /// Soft cap on the estimated peak working set. A portfolio race that
  /// exceeds it down-tiers to the single-strategy rung (1/N of the
  /// estimate); a single strategy exceeding it rejects.
  std::size_t max_memory_bytes = std::size_t(512) << 20;
  /// Deadlines shorter than this down-tier past the portfolio rung: a race
  /// that will be cancelled before any strategy can finish only burns the
  /// budget the fallback rungs need.
  double min_race_deadline_ms = 10.0;
};

enum class AdmissionVerdict { Admit, DownTier, Reject };

[[nodiscard]] std::string admission_verdict_name(AdmissionVerdict verdict);

struct AdmissionReport {
  AdmissionVerdict verdict = AdmissionVerdict::Admit;
  /// One entry per failed check; empty when verdict == Admit.
  std::vector<std::string> reasons;
  /// Estimated peak working set of one strategy run (bytes).
  std::size_t estimated_strategy_bytes = 0;
  /// The same estimate scaled by the number of racing strategies.
  std::size_t estimated_portfolio_bytes = 0;
  CircuitMetrics metrics;

  [[nodiscard]] bool admitted() const noexcept {
    return verdict != AdmissionVerdict::Reject;
  }
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] Json to_json() const;
};

class AdmissionGuard {
 public:
  AdmissionGuard(const Device& device, ResourceBudget budget);

  /// Assesses one request. `num_strategies` is the width of the portfolio
  /// rung's race (used for the memory estimate); `deadline_ms` the total
  /// wall-clock budget (0 = none).
  [[nodiscard]] AdmissionReport assess(const Circuit& circuit,
                                       std::size_t num_strategies = 1,
                                       double deadline_ms = 0.0) const;

  [[nodiscard]] const ResourceBudget& budget() const noexcept {
    return budget_;
  }

 private:
  int device_qubits_ = 0;
  std::string device_name_;
  ResourceBudget budget_;
};

}  // namespace qmap::resilience
