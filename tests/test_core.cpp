// End-to-end compiler-pipeline tests and the Sec. VI-B ExecutionSnapshot.
#include <gtest/gtest.h>

#include "arch/builtin.hpp"
#include "arch/config.hpp"
#include "core/compiler.hpp"
#include "core/report.hpp"
#include "core/snapshot.hpp"
#include "route/router.hpp"
#include "schedule/constraints.hpp"
#include "workloads/workloads.hpp"

namespace qmap {
namespace {

struct PipelineCase {
  std::string device;
  std::string router;
  std::string placer;
  std::string workload;
};

std::string pipeline_name(const testing::TestParamInfo<PipelineCase>& info) {
  return info.param.device + "_" + info.param.router + "_" +
         info.param.placer + "_" + info.param.workload;
}

Device pipeline_device(const std::string& name) {
  if (name == "qx4") return devices::ibm_qx4();
  if (name == "qx5") return devices::ibm_qx5();
  if (name == "s17") return devices::surface17();
  if (name == "s7") return devices::surface7();
  throw std::runtime_error("unknown device");
}

Circuit pipeline_workload(const std::string& name) {
  Rng rng(77);
  if (name == "fig1") return workloads::fig1_example();
  if (name == "ghz4") return workloads::ghz(4);
  if (name == "qft4") return workloads::qft(4);
  if (name == "grover2") return workloads::grover(2, 3);
  if (name == "random") return workloads::random_circuit(4, 25, rng, 0.4);
  if (name == "adder1") return workloads::cuccaro_adder(1);
  throw std::runtime_error("unknown workload");
}

class CompilerPipeline : public testing::TestWithParam<PipelineCase> {};

TEST_P(CompilerPipeline, CompilesVerifiablyToNativeLegalCircuits) {
  const PipelineCase& param = GetParam();
  const Device device = pipeline_device(param.device);
  CompilerOptions options;
  options.router = param.router;
  options.placer = param.placer;
  const Compiler compiler(device, options);
  const CompilationResult result =
      compiler.compile(pipeline_workload(param.workload));

  // Final circuit: native gate set, legal coupling.
  for (const Gate& gate : result.final_circuit) {
    EXPECT_TRUE(device.accepts(gate)) << gate.to_string();
  }
  EXPECT_TRUE(respects_coupling(result.final_circuit, device));

  // Schedule is a consistent reordering of the final circuit.
  EXPECT_TRUE(result.schedule.is_consistent_with(result.final_circuit));
  EXPECT_GE(result.scheduled_cycles, result.baseline_cycles);

  // End-to-end unitary equivalence.
  EXPECT_TRUE(Compiler::verify(result));
}

std::vector<PipelineCase> pipeline_cases() {
  std::vector<PipelineCase> cases;
  for (const char* device : {"qx4", "s17", "s7"}) {
    for (const char* router : {"naive", "sabre", "astar", "qmap"}) {
      cases.push_back({device, router, "greedy", "fig1"});
    }
  }
  cases.push_back({"qx4", "exact", "exhaustive", "fig1"});
  cases.push_back({"qx4", "exact", "identity", "random"});
  cases.push_back({"qx4", "sabre", "annealing", "qft4"});
  cases.push_back({"s17", "qmap", "exhaustive", "qft4"});
  cases.push_back({"s17", "sabre", "greedy", "random"});
  cases.push_back({"s17", "astar", "greedy", "grover2"});
  cases.push_back({"qx5", "sabre", "greedy", "qft4"});
  cases.push_back({"qx5", "astar", "annealing", "random"});
  cases.push_back({"s7", "qmap", "greedy", "adder1"});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Matrix, CompilerPipeline,
                         testing::ValuesIn(pipeline_cases()), pipeline_name);

TEST(Compiler, ReportContainsKeyNumbers) {
  const Compiler compiler(devices::surface17());
  const CompilationResult result =
      compiler.compile(workloads::fig1_example());
  const std::string report = result.report();
  EXPECT_NE(report.find("latency"), std::string::npos);
  EXPECT_NE(report.find("ratio"), std::string::npos);
  EXPECT_GT(result.latency_ratio(), 1.0);
}

TEST(Compiler, JsonReportCarriesTheKeyNumbers) {
  const Compiler compiler(devices::surface17());
  const CompilationResult result =
      compiler.compile(workloads::fig1_example());
  const Json report = result.to_json();
  EXPECT_EQ(report.at("circuit").as_string(), "fig1");
  EXPECT_EQ(report.at("original").at("two_qubit_gates").as_int(), 5);
  EXPECT_EQ(report.at("routing").at("added_swaps").as_int(),
            static_cast<int>(result.routing.added_swaps));
  EXPECT_EQ(report.at("scheduled_cycles").as_int(), result.scheduled_cycles);
  EXPECT_GT(report.at("latency_ratio").as_number(), 1.0);
  // Placements serialize as the paper-style physical->program arrays.
  EXPECT_EQ(report.at("routing").at("initial_placement").size(), 17u);
  // Round-trips through the JSON text form.
  EXPECT_TRUE(Json::parse(report.dump()) == report);
}

TEST(Compiler, VerifiesWideCliffordCircuitsViaTableau) {
  // 16 program qubits on QX5: beyond comfortable state-vector range, but
  // GHZ is Clifford, so verify() switches to the exact tableau check.
  const Compiler compiler(devices::ibm_qx5());
  const CompilationResult result = compiler.compile(workloads::ghz(16));
  EXPECT_TRUE(Compiler::verify(result));
}

TEST(Compiler, SchedulingCanBeDisabled) {
  CompilerOptions options;
  options.run_scheduler = false;
  const Compiler compiler(devices::ibm_qx4(), options);
  const CompilationResult result = compiler.compile(workloads::ghz(3));
  EXPECT_EQ(result.scheduled_cycles, 0);
  EXPECT_EQ(result.schedule.size(), 0u);
}

TEST(Compiler, ControlConstraintsIncreaseLatency) {
  const Circuit circuit = workloads::qft(4);
  CompilerOptions with;
  with.use_control_constraints = true;
  CompilerOptions without;
  without.use_control_constraints = false;
  const CompilationResult constrained =
      Compiler(devices::surface17(), with).compile(circuit);
  const CompilationResult unconstrained =
      Compiler(devices::surface17(), without).compile(circuit);
  EXPECT_GE(constrained.scheduled_cycles, unconstrained.scheduled_cycles);
}

TEST(Compiler, WorksWithJsonLoadedDevice) {
  // Fig. 2 / Sec. V: the device description comes from a config file.
  const Device device =
      device_from_json(device_to_json(devices::surface17()));
  const Compiler compiler(device);
  const CompilationResult result = compiler.compile(workloads::ghz(4));
  EXPECT_TRUE(Compiler::verify(result));
}

TEST(Snapshot, ExposesAllSectionSixComponents) {
  const Device s17 = devices::surface17();
  const Compiler compiler(s17);
  const CompilationResult compiled =
      compiler.compile(workloads::fig1_example());
  ExecutionSnapshot snapshot(compiled.routing.circuit, s17,
                             compiled.routing.initial);

  // Initially: nothing scheduled, some gates ready, none pending-complete.
  EXPECT_FALSE(snapshot.complete());
  EXPECT_EQ(snapshot.partial_schedule().size(), 0u);
  EXPECT_FALSE(snapshot.dependency_graph().ready().empty());
  EXPECT_EQ(snapshot.current_placement(), snapshot.initial_placement());

  // Step once: exactly one gate scheduled.
  EXPECT_TRUE(snapshot.step());
  EXPECT_EQ(snapshot.partial_schedule().size(), 1u);
  EXPECT_EQ(snapshot.dependency_graph().num_scheduled(), 1u);

  const int cycles = snapshot.run_to_completion();
  EXPECT_TRUE(snapshot.complete());
  EXPECT_GT(cycles, 0);
  EXPECT_FALSE(snapshot.step());

  // After completion the current placement reflects the routing SWAPs.
  EXPECT_EQ(snapshot.current_placement(), compiled.routing.final);

  // The resulting schedule is consistent with the routed circuit.
  EXPECT_TRUE(
      snapshot.partial_schedule().is_consistent_with(compiled.routing.circuit));
}

TEST(Snapshot, ControlSettingsTrackSharedAwgs) {
  const Device s17 = devices::surface17();
  Circuit c(17);
  c.x(1).y(3);  // same frequency group -> serialized, two table entries
  ExecutionSnapshot snapshot(c, s17, Placement::identity(17, 17));
  snapshot.run_to_completion();
  const auto settings = snapshot.control_settings();
  EXPECT_EQ(settings.size(), 2u);
  // Both on group 0 (f1), different cycles.
  for (const auto& [key, pulse] : settings) {
    EXPECT_EQ(key.second, 0);
    EXPECT_TRUE(pulse == "x" || pulse == "y");
  }
}

TEST(Snapshot, RejectsProgramSizedCircuits) {
  const Device s17 = devices::surface17();
  Circuit c(4);
  EXPECT_THROW(ExecutionSnapshot(c, s17, Placement::identity(4, 17)),
               MappingError);
}

TEST(Snapshot, ToStringSummarizesState) {
  const Device s7 = devices::surface7();
  Circuit c(7);
  c.x(0).cz(0, 2);
  ExecutionSnapshot snapshot(c, s7, Placement::identity(7, 7));
  snapshot.step();
  const std::string text = snapshot.to_string();
  EXPECT_NE(text.find("1/2 gates scheduled"), std::string::npos);
  EXPECT_NE(text.find("initial placement"), std::string::npos);
}

TEST(TextTable, FormatsAlignedColumns) {
  TextTable table({"workload", "swaps", "ratio"});
  table.add_row({"fig1", "1", TextTable::num(1.53)});
  table.add_row({"qft4", "12", TextTable::num(2.0)});
  const std::string text = table.str();
  EXPECT_NE(text.find("| workload |"), std::string::npos);
  EXPECT_NE(text.find("1.53"), std::string::npos);
  EXPECT_THROW(table.add_row({"too", "few"}), Error);
}

}  // namespace
}  // namespace qmap
