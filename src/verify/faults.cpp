#include "verify/faults.hpp"

#include <utility>

#include "common/error.hpp"
#include "decompose/decomposer.hpp"
#include "verify/shrink.hpp"

namespace qmap::verify {

std::string fault_name(FaultInjection fault) {
  switch (fault) {
    case FaultInjection::None: return "none";
    case FaultInjection::DropLastSwap: return "drop-last-swap";
    case FaultInjection::FlipLastCx: return "flip-last-cx";
  }
  return "none";
}

FaultInjection fault_from_name(const std::string& name) {
  if (name == "none") return FaultInjection::None;
  if (name == "drop-last-swap") return FaultInjection::DropLastSwap;
  if (name == "flip-last-cx") return FaultInjection::FlipLastCx;
  throw MappingError("unknown fault injection: '" + name +
                     "' (valid: none, drop-last-swap, flip-last-cx)");
}

bool inject_fault(CompilationResult& result, const Device& device,
                  FaultInjection fault) {
  if (fault == FaultInjection::None) return false;
  if (fault == FaultInjection::DropLastSwap) {
    const Circuit& routed = result.routing.circuit;
    std::size_t last_swap = routed.size();
    for (std::size_t i = routed.size(); i-- > 0;) {
      if (routed.gate(i).kind == GateKind::SWAP) {
        last_swap = i;
        break;
      }
    }
    if (last_swap == routed.size()) return false;  // no SWAP to drop
    Circuit sabotaged = remove_gates(routed, {last_swap});
    sabotaged = expand_swaps(sabotaged, device);
    sabotaged = fix_cx_directions(sabotaged, device);
    sabotaged = fuse_single_qubit(sabotaged);
    sabotaged = lower_single_qubit(sabotaged, device);
    sabotaged.set_name(result.final_circuit.name());
    result.final_circuit = std::move(sabotaged);
  } else if (fault == FaultInjection::FlipLastCx) {
    Circuit flipped(result.final_circuit.num_qubits(),
                    result.final_circuit.name());
    flipped.declare_cbits(result.final_circuit.num_cbits());
    std::size_t last_cx = result.final_circuit.size();
    for (std::size_t i = result.final_circuit.size(); i-- > 0;) {
      if (result.final_circuit.gate(i).kind == GateKind::CX) {
        last_cx = i;
        break;
      }
    }
    if (last_cx == result.final_circuit.size()) return false;  // no CX
    for (std::size_t i = 0; i < result.final_circuit.size(); ++i) {
      Gate gate = result.final_circuit.gate(i);
      if (i == last_cx) std::swap(gate.qubits[0], gate.qubits[1]);
      flipped.add(std::move(gate));
    }
    result.final_circuit = std::move(flipped);
  }
  result.schedule = Schedule();
  result.scheduled_cycles = 0;
  return true;
}

}  // namespace qmap::verify
