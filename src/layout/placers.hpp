// Initial-placement algorithms (Sec. III-A task 2).
//
// Qmap (Sec. V) uses an ILP for this step; we provide an exhaustive placer
// with the same optimality guarantee for the paper-scale instances, plus
// greedy and simulated-annealing placers for larger circuits (see
// DESIGN.md, substitutions).
#pragma once

#include <string>
#include <vector>

#include "arch/device.hpp"
#include "common/rng.hpp"
#include "engine/cancel.hpp"
#include "ir/circuit.hpp"
#include "layout/placement.hpp"

namespace qmap {

/// Weighted program-qubit interaction graph: entry (i, j) counts the
/// two-qubit gates between program qubits i and j.
class InteractionGraph {
 public:
  explicit InteractionGraph(const Circuit& circuit);

  [[nodiscard]] int num_qubits() const noexcept { return n_; }
  [[nodiscard]] int weight(int a, int b) const;
  /// Total two-qubit gates touching qubit q.
  [[nodiscard]] int degree(int q) const;
  /// Pairs with non-zero weight.
  [[nodiscard]] std::vector<std::pair<int, int>> edges() const;

 private:
  int n_ = 0;
  std::vector<int> weights_;  // row-major n x n, symmetric
};

/// Placement objective: sum over interacting pairs of
/// weight(i, j) * (device distance between their physical locations - 1),
/// i.e. 0 when every interacting pair is adjacent. Lower is better.
[[nodiscard]] long placement_cost(const InteractionGraph& interactions,
                                  const Placement& placement,
                                  const Device& device);

/// Interface shared by all initial placers.
class Placer {
 public:
  virtual ~Placer() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Computes an initial placement of `circuit` onto `device`.
  /// Throws MappingError when the circuit does not fit.
  [[nodiscard]] virtual Placement place(const Circuit& circuit,
                                        const Device& device) = 0;

  /// Attaches a cooperative cancellation token (engine/cancel.hpp, header
  /// only — no dependency on the engine library), mirroring
  /// Router::set_cancel_token so deadlines bound placement search loops
  /// too, not just routing. Not owned; null detaches.
  void set_cancel_token(const CancelToken* token) noexcept { cancel_ = token; }

 protected:
  /// Cancellation checkpoint for placer search loops. Implementations with
  /// superlinear loops (exhaustive DFS, annealing sweeps) must poll this
  /// often enough that a deadline interrupts them promptly; throws
  /// CancelledError when the token fired.
  void check_cancelled() const {
    if (cancel_ != nullptr) cancel_->check();
  }

 private:
  const CancelToken* cancel_ = nullptr;
};

/// Trivial placement: program qubit k -> physical qubit k.
class IdentityPlacer final : public Placer {
 public:
  [[nodiscard]] std::string name() const override { return "identity"; }
  [[nodiscard]] Placement place(const Circuit& circuit,
                                const Device& device) override;
};

/// Greedy: most-interacting program qubit at the device's graph center,
/// then each next program qubit (by interaction degree) at the free
/// physical qubit minimizing weighted distance to its placed partners.
class GreedyPlacer final : public Placer {
 public:
  [[nodiscard]] std::string name() const override { return "greedy"; }
  [[nodiscard]] Placement place(const Circuit& circuit,
                                const Device& device) override;
};

/// Exhaustive search over all placements (optimal for the
/// placement_cost objective). Guarded by a work limit; throws ResourceError
/// (ErrorClass::ResourceExhausted — fall back to a cheaper placer, do not
/// retry) when the instance is too large (use the annealing placer instead).
class ExhaustivePlacer final : public Placer {
 public:
  explicit ExhaustivePlacer(long max_assignments = 5'000'000)
      : max_assignments_(max_assignments) {}
  [[nodiscard]] std::string name() const override { return "exhaustive"; }
  [[nodiscard]] Placement place(const Circuit& circuit,
                                const Device& device) override;

 private:
  long max_assignments_;
};

/// Simulated annealing over placements, seeded by the greedy placer.
class AnnealingPlacer final : public Placer {
 public:
  explicit AnnealingPlacer(std::uint64_t seed = 0xC0FFEE, int iterations = 20000)
      : seed_(seed), iterations_(iterations) {}
  [[nodiscard]] std::string name() const override { return "annealing"; }
  [[nodiscard]] Placement place(const Circuit& circuit,
                                const Device& device) override;

 private:
  std::uint64_t seed_;
  int iterations_;
};

}  // namespace qmap
