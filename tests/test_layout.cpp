// Placement and initial-placer tests.
#include <gtest/gtest.h>

#include "arch/builtin.hpp"
#include "common/error.hpp"
#include "core/compiler.hpp"
#include "layout/placement.hpp"
#include "layout/placers.hpp"
#include "workloads/workloads.hpp"

namespace qmap {
namespace {

TEST(Placement, IdentityBijection) {
  const Placement p = Placement::identity(3, 5);
  EXPECT_EQ(p.num_program_qubits(), 3);
  EXPECT_EQ(p.num_physical_qubits(), 5);
  for (int k = 0; k < 3; ++k) EXPECT_EQ(p.phys_of_program(k), k);
  EXPECT_EQ(p.program_at_phys(4), -1);  // free (the paper's special value)
  EXPECT_EQ(p.wire_at_phys(4), 4);
}

TEST(Placement, FromProgramMapFillsFreeWires) {
  const Placement p = Placement::from_program_map({4, 0}, 5);
  EXPECT_EQ(p.phys_of_program(0), 4);
  EXPECT_EQ(p.phys_of_program(1), 0);
  EXPECT_EQ(p.program_at_phys(4), 0);
  EXPECT_EQ(p.program_at_phys(1), -1);
  // Free wires occupy remaining physical qubits in ascending order.
  EXPECT_EQ(p.phys_of_wire(2), 1);
  EXPECT_EQ(p.phys_of_wire(3), 2);
  EXPECT_EQ(p.phys_of_wire(4), 3);
}

TEST(Placement, RejectsInvalidMaps) {
  EXPECT_THROW((void)Placement::from_program_map({0, 0}, 3), MappingError);
  EXPECT_THROW((void)Placement::from_program_map({5}, 3), MappingError);
  EXPECT_THROW((void)Placement::identity(4, 3), MappingError);
}

TEST(Placement, ApplySwapExchangesWires) {
  Placement p = Placement::identity(2, 3);
  p.apply_swap(0, 2);
  EXPECT_EQ(p.phys_of_program(0), 2);
  EXPECT_EQ(p.program_at_phys(0), -1);
  EXPECT_EQ(p.wire_at_phys(0), 2);
  p.apply_swap(0, 2);  // undo
  EXPECT_EQ(p, Placement::identity(2, 3));
}

TEST(Placement, PhysToProgramArrayMatchesPaperShape) {
  const Placement p = Placement::from_program_map({1, 2}, 4);
  const std::vector<int> array = p.phys_to_program();
  EXPECT_EQ(array, (std::vector<int>{-1, 0, 1, -1}));
}

TEST(InteractionGraph, CountsTwoQubitGates) {
  const InteractionGraph graph(workloads::fig1_example());
  EXPECT_EQ(graph.weight(2, 3), 2);  // cx(2,3) appears twice
  EXPECT_EQ(graph.weight(3, 2), 2);  // symmetric
  EXPECT_EQ(graph.weight(0, 1), 1);
  EXPECT_EQ(graph.weight(0, 3), 0);
  EXPECT_EQ(graph.degree(2), 4);     // cx(2,3) x2, cx(1,2), cx(0,2)
  EXPECT_EQ(graph.edges().size(), 4u);
}

TEST(PlacementCost, ZeroWhenAllPairsAdjacent) {
  const Device line = devices::linear(4);
  Circuit c(3);
  c.cx(0, 1).cx(1, 2);
  const InteractionGraph graph(c);
  EXPECT_EQ(placement_cost(graph, Placement::identity(3, 4), line), 0);
  // Move q2 away: distance 2 -> cost 1.
  EXPECT_EQ(placement_cost(graph, Placement::from_program_map({0, 1, 3}, 4),
                           line),
            1);
}

class PlacerValidity : public testing::TestWithParam<const char*> {};

TEST_P(PlacerValidity, ProducesValidPlacements) {
  const auto placer = make_placer(GetParam());
  for (const Device& device :
       {devices::ibm_qx4(), devices::surface17(), devices::grid(3, 3)}) {
    const Circuit circuit = workloads::fig1_example();
    const Placement placement = placer->place(circuit, device);
    EXPECT_EQ(placement.num_program_qubits(), circuit.num_qubits());
    EXPECT_EQ(placement.num_physical_qubits(), device.num_qubits());
    // Bijectivity over all wires.
    std::vector<bool> seen(static_cast<std::size_t>(device.num_qubits()),
                           false);
    for (int w = 0; w < device.num_qubits(); ++w) {
      const int phys = placement.phys_of_wire(w);
      EXPECT_FALSE(seen[static_cast<std::size_t>(phys)]);
      seen[static_cast<std::size_t>(phys)] = true;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPlacers, PlacerValidity,
                         testing::Values("identity", "greedy", "exhaustive",
                                         "annealing"),
                         [](const auto& info) { return info.param; });

TEST(Placers, ExhaustiveIsOptimal) {
  // Exhaustive must lower-bound every other placer on the shared objective.
  for (const Device& device : {devices::ibm_qx4(), devices::surface7()}) {
    Rng rng(3);
    for (int trial = 0; trial < 4; ++trial) {
      const Circuit circuit = workloads::random_circuit(4, 14, rng, 0.6);
      const InteractionGraph graph(circuit);
      const long best =
          placement_cost(graph, ExhaustivePlacer().place(circuit, device),
                         device);
      for (const char* other : {"identity", "greedy", "annealing"}) {
        const long cost = placement_cost(
            graph, make_placer(other)->place(circuit, device), device);
        EXPECT_LE(best, cost) << other << " beat exhaustive";
      }
    }
  }
}

TEST(Placers, GreedyPutsHotQubitNearCenter) {
  // On a line, the most-connected qubit should not land on an endpoint.
  const Device line = devices::linear(7);
  Circuit c(4);
  c.cx(0, 1).cx(0, 2).cx(0, 3);  // star centred on q0
  const Placement p = GreedyPlacer().place(c, line);
  EXPECT_NE(p.phys_of_program(0), 0);
  EXPECT_NE(p.phys_of_program(0), 6);
}

TEST(Placers, ExhaustiveFindsZeroCostWhenOneExists) {
  // A 4-cycle of interactions embeds perfectly in a 2x2 grid.
  const Device grid = devices::grid(2, 2);
  Circuit c(4);
  c.cx(0, 1).cx(1, 2).cx(2, 3).cx(3, 0);
  const InteractionGraph graph(c);
  const Placement p = ExhaustivePlacer().place(c, grid);
  EXPECT_EQ(placement_cost(graph, p, grid), 0);
}

TEST(Placers, ExhaustiveThrowsWhenTooLarge) {
  ExhaustivePlacer placer(/*max_assignments=*/100);
  const Device grid = devices::grid(4, 4);
  Rng rng(1);
  const Circuit circuit = workloads::random_circuit(8, 20, rng);
  // Exceeding the work limit is resource exhaustion, not a mapping bug:
  // the resilience pipeline reacts by falling back, never by retrying.
  try {
    (void)placer.place(circuit, grid);
    FAIL() << "expected ResourceError";
  } catch (const ResourceError& e) {
    EXPECT_EQ(e.error_class(), ErrorClass::ResourceExhausted);
  }
}

TEST(Placers, AnnealingNeverWorseThanGreedySeed) {
  Rng rng(12);
  for (const Device& device : {devices::surface17(), devices::grid(4, 4)}) {
    const Circuit circuit = workloads::random_circuit(8, 40, rng, 0.5);
    const InteractionGraph graph(circuit);
    const long greedy = placement_cost(
        graph, GreedyPlacer().place(circuit, device), device);
    const long annealed = placement_cost(
        graph, AnnealingPlacer().place(circuit, device), device);
    EXPECT_LE(annealed, greedy);
  }
}

TEST(Placers, RejectOversizedCircuits) {
  const Device qx4 = devices::ibm_qx4();
  const Circuit big = workloads::ghz(7);
  for (const char* name : {"identity", "greedy", "exhaustive", "annealing"}) {
    EXPECT_THROW((void)make_placer(name)->place(big, qx4), MappingError)
        << name;
  }
}

TEST(Factories, UnknownNamesThrow) {
  EXPECT_THROW((void)make_placer("nope"), MappingError);
  EXPECT_THROW((void)make_router("nope"), MappingError);
}

}  // namespace
}  // namespace qmap
