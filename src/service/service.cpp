#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <istream>
#include <ostream>
#include <utility>

#include "arch/builtin.hpp"
#include "common/digest.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "qasm/openqasm.hpp"

namespace qmap::service {

namespace {

[[nodiscard]] double wall_since(
    std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Response status for a cached/computed outcome. Admission rejections are
/// stored with an "rejected:" error prefix so hits replay the same status
/// the cold path answered.
[[nodiscard]] std::string status_of(const CachedOutcome& value) {
  if (value.ok) return "ok";
  if (starts_with(value.error, "rejected")) return "rejected";
  return "error";
}

}  // namespace

ServiceRequest ServiceRequest::from_json(const Json& json) {
  ServiceRequest request;
  for (const auto& [key, value] : json.as_object()) {
    if (key == "op") {
      request.op = value.as_string();
    } else if (key == "id") {
      request.id = value.as_string();
    } else if (key == "client") {
      request.client = value.as_string();
    } else if (key == "device") {
      request.device = value.as_string();
    } else if (key == "qasm") {
      request.qasm = value.as_string();
    } else if (key == "pipeline") {
      request.pipeline = PipelineSpec::from_json(value);
    } else if (key == "seed") {
      request.seed = static_cast<std::uint64_t>(value.as_number());
    } else if (key == "deadline_ms") {
      request.deadline_ms = value.as_number();
    } else if (key == "no_cache") {
      request.no_cache = value.as_bool();
    } else if (key == "verbose") {
      request.verbose = value.as_bool();
    } else {
      throw MappingError("service request: unknown field '" + key +
                         "' (valid: client, deadline_ms, device, id, "
                         "no_cache, op, pipeline, qasm, seed, verbose)");
    }
  }
  if (request.op != "compile" && request.op != "stats" &&
      request.op != "disconnect" && request.op != "ping") {
    throw MappingError("service request: unknown op '" + request.op +
                       "' (valid: compile, disconnect, ping, stats)");
  }
  if (request.client.empty()) request.client = "anon";
  return request;
}

Json ServiceRequest::to_json() const {
  JsonObject object;
  object["op"] = op;
  if (!id.empty()) object["id"] = id;
  object["client"] = client;
  if (!device.empty()) object["device"] = device;
  if (!qasm.empty()) object["qasm"] = qasm;
  if (pipeline.has_value()) object["pipeline"] = pipeline->to_json();
  object["seed"] = seed;
  if (deadline_ms > 0.0) object["deadline_ms"] = deadline_ms;
  if (no_cache) object["no_cache"] = true;
  if (verbose) object["verbose"] = true;
  return Json(std::move(object));
}

Json ServiceResponse::to_json() const {
  JsonObject object;
  if (!id.empty()) object["id"] = id;
  object["client"] = client;
  object["status"] = status;
  if (!cache.empty()) object["cache"] = cache;
  if (!fingerprint.empty()) object["fingerprint"] = fingerprint;
  if (rung >= 0) object["rung"] = rung;
  if (!winner.empty()) object["winner"] = winner;
  if (rung >= 0) object["validated"] = validated;
  object["wall_ms"] = wall_ms;
  if (!error.empty()) object["error"] = error;
  if (retry_after_ms > 0.0) object["retry_after_ms"] = retry_after_ms;
  if (!mode.empty()) object["mode"] = mode;
  if (!payload.is_null()) object["payload"] = payload;
  return Json(std::move(object));
}

std::string canonical_request_text(const ServiceRequest& request,
                                   const Circuit& circuit,
                                   double effective_deadline_ms) {
  // Versioned so a future change to the key recipe invalidates (rather
  // than aliases) old entries. The circuit is re-serialized from the
  // parsed IR: whitespace, comments, and register naming in the source
  // cannot split the cache.
  std::string text = "qmap-service-request/v1\n";
  text += "device=" + request.device + "\n";
  text += "seed=" + std::to_string(request.seed) + "\n";
  text += "deadline_ms=" + format_double(effective_deadline_ms) + "\n";
  text += "pipeline=";
  text += request.pipeline.has_value()
              ? request.pipeline->canonical_json().dump()
              : std::string("portfolio");
  text += "\nqasm=\n" + to_openqasm(circuit);
  return text;
}

CompileService::CompileService(ServiceConfig config)
    : config_(std::move(config)),
      cache_([&] {
        CacheConfig cc = config_.cache;
        cc.obs = config_.obs;
        return cc;
      }()),
      compile_pool_(config_.num_compile_threads) {
  config_.num_workers = std::max(1, config_.num_workers);
  cost_estimate_ms_ = std::max(0.0, config_.overload.initial_cost_ms);
  if (config_.register_builtin_devices) {
    register_device(devices::ibm_qx4());
    register_device(devices::ibm_qx5());
    register_device(devices::surface7());
    register_device(devices::surface17());
  }
  workers_.reserve(static_cast<std::size_t>(config_.num_workers));
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

CompileService::~CompileService() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void CompileService::register_device(Device device) {
  resilience::Policy policy = config_.policy;
  policy.obs = config_.obs;
  auto supervisor = std::make_unique<resilience::ResilientCompiler>(
      device, std::move(policy));
  std::string name = device.name();
  auto breaker =
      std::make_unique<resilience::CircuitBreaker>(config_.breaker);
  breaker->on_transition = [this, name](resilience::BreakerState state) {
    // Counters are aggregation-point increments (byte-deterministic for a
    // deterministic failure sequence); the per-device gauge is the live
    // dashboard view: 0 closed, 1 half-open, 2 open.
    switch (state) {
      case resilience::BreakerState::Open:
        obs::add(config_.obs, "service.breaker_open");
        break;
      case resilience::BreakerState::HalfOpen:
        obs::add(config_.obs, "service.breaker_half_open");
        break;
      case resilience::BreakerState::Closed:
        obs::add(config_.obs, "service.breaker_closed");
        break;
    }
    obs::set_gauge(config_.obs, "service.breaker." + name + ".state",
                   state == resilience::BreakerState::Closed   ? 0.0
                   : state == resilience::BreakerState::HalfOpen ? 1.0
                                                                 : 2.0);
  };
  std::lock_guard<std::mutex> lock(devices_mutex_);
  devices_.insert_or_assign(
      std::move(name), DeviceEntry{std::move(device), std::move(supervisor),
                                   std::move(breaker)});
}

std::vector<std::string> CompileService::device_names() const {
  std::lock_guard<std::mutex> lock(devices_mutex_);
  std::vector<std::string> names;
  names.reserve(devices_.size());
  for (const auto& [name, entry] : devices_) names.push_back(name);
  return names;
}

ServiceResponse CompileService::handle(const ServiceRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  obs::add(config_.obs, "service.requests");

  ServiceResponse response;
  if (request.op == "ping") {
    response.id = request.id;
    response.client = request.client;
    response.status = "pong";
  } else if (request.op == "stats") {
    response = stats_response(request);
  } else if (request.op == "disconnect") {
    disconnect(request.client);
    response.id = request.id;
    response.client = request.client;
    response.status = "ok";
  } else {
    response = handle_compile(request);
  }

  response.wall_ms = wall_since(start);
  obs::observe(config_.obs, "service.latency_ms", response.wall_ms);
  obs::observe(config_.obs,
               "service.client." + request.client + ".latency_ms",
               response.wall_ms);
  if (response.status == "ok" || response.status == "pong" ||
      response.status == "stats") {
    obs::add(config_.obs, "service.requests.ok");
  } else if (response.status == "rejected") {
    obs::add(config_.obs, "service.requests.rejected");
  } else if (response.status == "cancelled") {
    obs::add(config_.obs, "service.requests.cancelled");
  } else if (response.status == "unavailable") {
    obs::add(config_.obs, "service.requests.unavailable");
  } else {
    obs::add(config_.obs, "service.requests.failed");
  }
  return response;
}

ServiceResponse CompileService::stats_response(const ServiceRequest& request) {
  ServiceResponse response;
  response.id = request.id;
  response.client = request.client;
  response.status = "stats";
  const CacheStats stats = cache_.stats();
  JsonObject cache;
  cache["hits"] = stats.hits;
  cache["negative_hits"] = stats.negative_hits;
  cache["misses"] = stats.misses;
  cache["coalesced"] = stats.coalesced;
  cache["evictions"] = stats.evictions;
  cache["expired"] = stats.expired;
  cache["insert_rejected"] = stats.insert_rejected;
  cache["bytes"] = stats.bytes;
  cache["entries"] = stats.entries;
  JsonObject payload;
  payload["cache"] = Json(std::move(cache));
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    payload["queued"] = queued_;
  }
  JsonArray devices;
  for (auto& name : device_names()) devices.emplace_back(std::move(name));
  payload["devices"] = Json(std::move(devices));
  response.payload = Json(std::move(payload));
  return response;
}

namespace {

/// Copies the cached fields every response shape shares.
void fill_from_outcome(ServiceResponse& response, const CachedOutcome& value,
                       bool verbose) {
  response.status = status_of(value);
  response.fingerprint = value.fingerprint_digest;
  response.rung = value.rung;
  response.winner = value.winner_label;
  response.validated = value.validated;
  response.error = value.error;
  if (value.brownout) response.mode = "brownout";
  if (verbose && !value.outcome_json.empty()) {
    response.payload = Json::parse(value.outcome_json);
  }
}

/// Settles the breaker verdict for a finished compile. Admission
/// rejections are per-request verdicts (too many qubits), not device
/// health — they release the acquisition instead of counting.
void settle_breaker(resilience::CircuitBreaker& breaker,
                    const CachedOutcome& value) {
  if (!value.ok && starts_with(value.error, "rejected")) {
    breaker.release();
    return;
  }
  breaker.record(value.ok, value.error_class);
}

}  // namespace

ServiceResponse CompileService::handle_compile(const ServiceRequest& request) {
  ServiceResponse response;
  response.id = request.id;
  response.client = request.client;

  const DeviceEntry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(devices_mutex_);
    auto it = devices_.find(request.device);
    if (it != devices_.end()) entry = &it->second;
  }
  if (entry == nullptr) {
    obs::add(config_.obs, "service.requests.invalid");
    response.status = "error";
    response.error = "unknown device '" + request.device +
                     "' (registered: " + join(device_names(), ", ") + ")";
    return response;
  }

  Circuit circuit;
  try {
    circuit = parse_openqasm(request.qasm);
  } catch (const std::exception& e) {
    obs::add(config_.obs, "service.requests.invalid");
    response.status = "error";
    response.error = std::string("qasm parse failed: ") + e.what();
    return response;
  }

  const double effective_deadline_ms = request.deadline_ms > 0.0
                                           ? request.deadline_ms
                                           : config_.default_deadline_ms;

  resilience::CircuitBreaker& breaker = *entry->breaker;

  if (request.no_cache) {
    if (!breaker.try_acquire()) {
      obs::add(config_.obs, "service.breaker_fast_fail");
      response.status = "unavailable";
      response.error =
          "device '" + request.device + "' circuit breaker open";
      response.retry_after_ms = std::max(breaker.retry_after_ms(),
                                         config_.overload.retry_after_ms);
      return response;
    }
    obs::add(config_.obs, "service.cache.bypass");
    const CachedOutcome value =
        guarded_compile(*entry, request, circuit, effective_deadline_ms,
                        &drain_token_, brownout_active());
    settle_breaker(breaker, value);
    fill_from_outcome(response, value, request.verbose);
    response.cache = "bypass";
    return response;
  }

  const std::string key = content_digest(
      canonical_request_text(request, circuit, effective_deadline_ms));

  if (!breaker.try_acquire()) {
    // Open breaker: cached answers (positive or negative — both are
    // deterministic replays) still serve; only fresh work at the sick
    // device fast-fails.
    if (const auto cached = cache_.lookup(key)) {
      fill_from_outcome(response, *cached, request.verbose);
      response.cache = cached->ok ? "hit" : "negative-hit";
      return response;
    }
    obs::add(config_.obs, "service.breaker_fast_fail");
    response.status = "unavailable";
    response.error = "device '" + request.device + "' circuit breaker open";
    response.retry_after_ms = std::max(breaker.retry_after_ms(),
                                       config_.overload.retry_after_ms);
    return response;
  }

  ResultCache::Lookup lookup = cache_.acquire(key);

  switch (lookup.kind) {
    case ResultCache::Lookup::Kind::Hit: {
      breaker.release();  // no fresh work ran; verdict is neutral
      fill_from_outcome(response, *lookup.value, request.verbose);
      response.cache = lookup.value->ok ? "hit" : "negative-hit";
      return response;
    }
    case ResultCache::Lookup::Kind::Follower: {
      breaker.release();  // the leader owns this compile's verdict
      track_flight(request.client, lookup.flight);
      const auto value = cache_.wait(lookup.flight);
      if (value == nullptr) {
        // Leader abandoned (cancelled): nothing was cached; this client's
        // request dies with the flight it joined.
        untrack_flight(request.client, lookup.flight.get());
        response.status = "cancelled";
        response.cache = "coalesced";
        response.error = "compile cancelled before completion";
        return response;
      }
      untrack_flight(request.client, lookup.flight.get());
      fill_from_outcome(response, *value, request.verbose);
      response.cache = "coalesced";
      return response;
    }
    case ResultCache::Lookup::Kind::Leader:
      break;
  }

  // Drain cancels stragglers through this parent link; the flight's own
  // token still fires on total client disinterest as before.
  lookup.flight->token().link_parent(&drain_token_);

  track_flight(request.client, lookup.flight);
  const CachedOutcome value =
      guarded_compile(*entry, request, circuit, effective_deadline_ms,
                      &lookup.flight->token(), brownout_active());

  if (!value.ok && lookup.flight->token().cancelled()) {
    // Every interested client hung up mid-compile (or drain fired); don't
    // poison the cache with a cancellation artifact, and don't count it
    // against the device either.
    breaker.release();
    cache_.abandon(lookup.flight);
    untrack_flight(request.client, lookup.flight.get());
    response.status = "cancelled";
    response.cache = "miss";
    response.error = value.error.empty() ? "compile cancelled" : value.error;
    return response;
  }

  settle_breaker(breaker, value);
  // Brownout answers are delivered (to this client and every follower)
  // but never stored: a degraded rung-2 result must not be replayed as a
  // hit after the overload clears.
  cache_.complete(lookup.flight, value, /*store=*/!value.brownout);
  untrack_flight(request.client, lookup.flight.get());
  fill_from_outcome(response, value, request.verbose);
  response.cache = "miss";
  return response;
}

CachedOutcome CompileService::guarded_compile(const DeviceEntry& entry,
                                              const ServiceRequest& request,
                                              const Circuit& circuit,
                                              double effective_deadline_ms,
                                              const CancelToken* cancel,
                                              bool brownout) {
  const auto start = std::chrono::steady_clock::now();
  CachedOutcome value;
  try {
    value = run_compile(entry, request, circuit, effective_deadline_ms,
                        cancel, brownout);
  } catch (const std::exception& e) {
    // An exception that escaped the shielded ladder indicts the device's
    // pipeline as hard as any Permanent failure.
    value.ok = false;
    value.error = std::string("compile threw: ") + e.what();
    value.error_class = ErrorClass::Permanent;
    value.brownout = brownout;
  }
  record_cost(wall_since(start));
  return value;
}

CachedOutcome CompileService::run_compile(const DeviceEntry& entry,
                                          const ServiceRequest& request,
                                          const Circuit& circuit,
                                          double effective_deadline_ms,
                                          const CancelToken* cancel,
                                          bool brownout) {
  CachedOutcome out;

  // Shared admission path: the same supervisor assess() that
  // resilience::compile and compile_batch run. Rejections are answered
  // (and negatively cached) without constructing a per-request compiler.
  const resilience::AdmissionReport admission =
      entry.supervisor->assess(circuit);
  if (!admission.admitted()) {
    out.ok = false;
    out.error = "rejected: " + join(admission.reasons, "; ");
    out.outcome_json = admission.to_json().dump();
    return out;
  }

  resilience::Policy policy = config_.policy;
  policy.seed = request.seed;
  policy.deadline_ms = effective_deadline_ms;
  policy.obs = config_.obs;
  policy.cancel = cancel;
  if (request.pipeline.has_value()) {
    // A pinned pipeline runs as rung 1 (with the never-fails rung below
    // it); no portfolio race is spent on a request that asked for one
    // strategy. Canonical form so the rung label/report match the cache
    // key's normalization.
    policy.rung1_pipeline = request.pipeline->canonical();
    policy.first_rung = std::max(policy.first_rung, 1);
  }
  if (brownout) {
    // Sustained overload: skip straight to the cheap never-fails rung so
    // the queue keeps moving. The answer is marked and never cached.
    policy.first_rung = std::max(policy.first_rung, 2);
    out.brownout = true;
    obs::add(config_.obs, "service.brownout_compiles");
  }

  const resilience::ResilientCompiler compiler(entry.device,
                                               std::move(policy));
  const resilience::CompileOutcome outcome =
      compiler.compile(circuit, compile_pool_);
  obs::add(config_.obs, "service.compiles");

  out.ok = outcome.ok;
  out.fingerprint = outcome.fingerprint();
  out.fingerprint_digest = content_digest(out.fingerprint);
  out.outcome_json = outcome.to_json().dump();
  out.winner_label = outcome.winner_label;
  out.rung = outcome.rung;
  out.validated = outcome.validated;
  out.error = outcome.error;
  if (!out.ok) {
    // Terminal recovery class for the breaker: the last rung that actually
    // attempted work decides; cancellations are Transient whatever the
    // rung reported (a hung-up client says nothing about the device).
    out.error_class = ErrorClass::Permanent;
    for (auto it = outcome.rungs.rbegin(); it != outcome.rungs.rend(); ++it) {
      if (it->skipped || it->attempts.empty()) continue;
      out.error_class = it->attempts.back().error_class;
      break;
    }
    if (out.error.find("cancel") != std::string::npos) {
      out.error_class = ErrorClass::Transient;
    }
  }
  return out;
}

void CompileService::track_flight(
    const std::string& client,
    const std::shared_ptr<ResultCache::Flight>& flight) {
  // The interest unit was acquired in ResultCache::acquire (leader: the
  // Flight's initial count; follower: retain_interest). Recording the
  // (client, flight) pair hands ownership of that unit to exactly one of
  // untrack_flight (normal completion) or disconnect (client hangup).
  std::lock_guard<std::mutex> lock(flights_mutex_);
  flights_.emplace(client, flight);
}

void CompileService::untrack_flight(const std::string& client,
                                    const ResultCache::Flight* flight) {
  std::lock_guard<std::mutex> lock(flights_mutex_);
  auto [begin, end] = flights_.equal_range(client);
  for (auto it = begin; it != end; ++it) {
    const auto held = it->second.lock();
    if (held.get() == flight) {
      flights_.erase(it);
      held->drop_interest();
      return;
    }
  }
  // Absent: disconnect() already claimed (and dropped) this unit.
}

void CompileService::disconnect(const std::string& client) {
  obs::add(config_.obs, "service.disconnects");

  // Flush queued requests first so none of them starts a flight after the
  // interest purge below.
  std::deque<Pending> flushed;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    auto it = queues_.find(client);
    if (it != queues_.end()) {
      flushed = std::move(it->second.pending);
      queues_.erase(it);
      rotation_.erase(std::remove(rotation_.begin(), rotation_.end(), client),
                      rotation_.end());
      queued_ -= flushed.size();
      obs::set_gauge(config_.obs, "service.queue_depth",
                     static_cast<double>(queued_));
      update_brownout_locked();
    }
  }
  for (auto& pending : flushed) {
    ServiceResponse response;
    response.id = pending.request.id;
    response.client = client;
    response.status = "cancelled";
    response.error = "client disconnected before dispatch";
    obs::add(config_.obs, "service.requests.cancelled");
    if (pending.done) pending.done(std::move(response));
    finish_one();
  }

  // Drop this client's interest in every in-flight compile; a flight with
  // no remaining interested client fires its CancelToken.
  std::vector<std::shared_ptr<ResultCache::Flight>> dropped;
  {
    std::lock_guard<std::mutex> lock(flights_mutex_);
    auto [begin, end] = flights_.equal_range(client);
    for (auto it = begin; it != end;) {
      if (auto flight = it->second.lock()) {
        dropped.push_back(std::move(flight));
      }
      it = flights_.erase(it);
    }
  }
  for (const auto& flight : dropped) flight->drop_interest();
}

LoadDecision CompileService::assess_load(double deadline_ms) const {
  LoadDecision decision;
  std::size_t queued = 0;
  bool draining = false;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queued = queued_;
    draining = draining_ || stopping_;
  }
  std::size_t outstanding = 0;
  {
    std::lock_guard<std::mutex> lock(outstanding_mutex_);
    outstanding = outstanding_;
  }
  double cost_ms = 0.0;
  {
    std::lock_guard<std::mutex> lock(cost_mutex_);
    cost_ms = cost_estimate_ms_;
  }
  // Outstanding (queued + executing) over the dispatcher width: the wait a
  // request admitted *now* would see if every request ahead of it costs
  // the EMA estimate.
  decision.predicted_wait_ms = static_cast<double>(outstanding) * cost_ms /
                               static_cast<double>(
                                   std::max(1, config_.num_workers));
  decision.brownout = brownout_.load(std::memory_order_relaxed);
  if (draining) {
    decision.shed = true;
    decision.reason = "service draining";
  } else if (config_.overload.max_queued_total > 0 &&
             queued >= config_.overload.max_queued_total) {
    decision.shed = true;
    decision.reason =
        "queue budget exhausted (max " +
        std::to_string(config_.overload.max_queued_total) + ")";
  } else if (deadline_ms > 0.0 &&
             decision.predicted_wait_ms > deadline_ms) {
    decision.shed = true;
    decision.reason = "predicted queue wait " +
                      format_double(decision.predicted_wait_ms) +
                      "ms exceeds deadline " + format_double(deadline_ms) +
                      "ms";
  }
  if (decision.shed) {
    decision.retry_after_ms = std::max(config_.overload.retry_after_ms,
                                       decision.predicted_wait_ms);
  }
  return decision;
}

void CompileService::submit(ServiceRequest request,
                            std::function<void(ServiceResponse)> done) {
  // Overload admission before the queue lock: shedding is deliberately a
  // read-only decision (a racing submit may slip one request past the
  // budget; the budget is a watermark, not an invariant).
  const double effective_deadline_ms = request.deadline_ms > 0.0
                                           ? request.deadline_ms
                                           : config_.default_deadline_ms;
  const LoadDecision decision = assess_load(effective_deadline_ms);
  if (decision.shed) {
    obs::add(config_.obs, "service.requests");
    obs::add(config_.obs, "service.shed");
    ServiceResponse response;
    response.id = request.id;
    response.client = request.client;
    response.status = "shed";
    response.error = decision.reason;
    response.retry_after_ms = decision.retry_after_ms;
    if (done) done(std::move(response));
    return;
  }

  bool rejected = false;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_ || draining_) {
      rejected = true;
    } else {
      ClientQueue& queue = queues_[request.client];
      if (queue.pending.size() >= config_.max_queued_per_client) {
        rejected = true;
      } else {
        const bool was_idle = queue.pending.empty();
        const std::string client = request.client;
        queue.pending.push_back(Pending{std::move(request), std::move(done)});
        if (was_idle) rotation_.push_back(client);
        ++queued_;
        obs::set_gauge(config_.obs, "service.queue_depth",
                       static_cast<double>(queued_));
        update_brownout_locked();
        {
          std::lock_guard<std::mutex> outstanding_lock(outstanding_mutex_);
          ++outstanding_;
        }
      }
    }
  }
  if (rejected) {
    obs::add(config_.obs, "service.requests");
    obs::add(config_.obs, "service.requests.rejected");
    ServiceResponse response;
    response.id = request.id;
    response.client = request.client;
    response.status = "rejected";
    response.error = "client queue full (max " +
                     std::to_string(config_.max_queued_per_client) + ")";
    if (done) done(std::move(response));
    return;
  }
  queue_cv_.notify_one();
}

std::future<ServiceResponse> CompileService::submit(ServiceRequest request) {
  auto promise = std::make_shared<std::promise<ServiceResponse>>();
  std::future<ServiceResponse> future = promise->get_future();
  submit(std::move(request), [promise](ServiceResponse response) {
    promise->set_value(std::move(response));
  });
  return future;
}

void CompileService::worker_loop() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return stopping_ || !rotation_.empty(); });
      if (rotation_.empty()) {
        // stopping_ and fully drained: outstanding requests were all
        // answered before the destructor let workers exit.
        return;
      }
      // Round-robin: serve the head client one request, then rotate it to
      // the back if it still has work. A flooding client advances one
      // request per full rotation, the same as everyone else.
      const std::string client = std::move(rotation_.front());
      rotation_.pop_front();
      auto it = queues_.find(client);
      if (it == queues_.end() || it->second.pending.empty()) {
        if (it != queues_.end()) queues_.erase(it);
        continue;
      }
      pending = std::move(it->second.pending.front());
      it->second.pending.pop_front();
      if (it->second.pending.empty()) {
        queues_.erase(it);
      } else {
        rotation_.push_back(client);
      }
      --queued_;
      obs::set_gauge(config_.obs, "service.queue_depth",
                     static_cast<double>(queued_));
      update_brownout_locked();
    }
    ServiceResponse response = handle(pending.request);
    if (pending.done) pending.done(std::move(response));
    finish_one();
  }
}

void CompileService::finish_one() {
  std::lock_guard<std::mutex> lock(outstanding_mutex_);
  --outstanding_;
  outstanding_cv_.notify_all();
}

void CompileService::wait_idle() {
  std::unique_lock<std::mutex> lock(outstanding_mutex_);
  outstanding_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

void CompileService::update_brownout_locked() {
  if (!config_.overload.brownout_enabled ||
      config_.overload.max_queued_total == 0) {
    return;
  }
  const double total =
      static_cast<double>(config_.overload.max_queued_total);
  const double depth = static_cast<double>(queued_);
  const bool active = brownout_.load(std::memory_order_relaxed);
  if (!active &&
      depth >= config_.overload.brownout_enter_fraction * total) {
    brownout_.store(true, std::memory_order_relaxed);
    obs::add(config_.obs, "service.brownout_entered");
    obs::set_gauge(config_.obs, "service.brownout", 1.0);
  } else if (active &&
             depth <= config_.overload.brownout_exit_fraction * total) {
    brownout_.store(false, std::memory_order_relaxed);
    obs::add(config_.obs, "service.brownout_exited");
    obs::set_gauge(config_.obs, "service.brownout", 0.0);
  }
}

bool CompileService::brownout_active() const noexcept {
  return brownout_.load(std::memory_order_relaxed);
}

void CompileService::record_cost(double wall_ms) {
  std::lock_guard<std::mutex> lock(cost_mutex_);
  const double alpha =
      std::min(1.0, std::max(0.0, config_.overload.cost_ema_alpha));
  cost_estimate_ms_ = (1.0 - alpha) * cost_estimate_ms_ + alpha * wall_ms;
  obs::set_gauge(config_.obs, "service.cost_estimate_ms", cost_estimate_ms_);
}

resilience::BreakerState CompileService::breaker_state(
    const std::string& device) const {
  std::lock_guard<std::mutex> lock(devices_mutex_);
  const auto it = devices_.find(device);
  if (it == devices_.end()) return resilience::BreakerState::Closed;
  return it->second.breaker->state();
}

bool CompileService::draining() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return draining_;
}

DrainReport CompileService::drain(double deadline_ms) {
  const auto start = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    draining_ = true;
  }
  DrainReport report;
  {
    std::unique_lock<std::mutex> lock(outstanding_mutex_);
    if (deadline_ms > 0.0) {
      report.clean = outstanding_cv_.wait_for(
          lock, std::chrono::duration<double, std::milli>(deadline_ms),
          [this] { return outstanding_ == 0; });
    } else {
      outstanding_cv_.wait(lock, [this] { return outstanding_ == 0; });
    }
  }
  if (!report.clean) {
    // Deadline passed with work still in flight: fire the drain token —
    // every leader/bypass compile is parent-linked to it — and wait for
    // the cancellations to flush. Each request still gets its response
    // (status "cancelled"), just not its result.
    obs::add(config_.obs, "service.drain_forced");
    drain_token_.cancel();
    std::unique_lock<std::mutex> lock(outstanding_mutex_);
    outstanding_cv_.wait(lock, [this] { return outstanding_ == 0; });
  }
  report.wall_ms = wall_since(start);
  obs::observe(config_.obs, "service.drain_ms", report.wall_ms);
  return report;
}

namespace {

enum class LineRead { Eof, Ok, OverCap };

/// getline with a byte cap: an over-cap line is discarded (the bytes are
/// drained up to the newline but never accumulated, so one hostile line
/// cannot balloon memory) and reported so the caller can answer it.
/// `has_content` mirrors the serve() loop's blank-line skip: over-cap
/// whitespace runs are ignored exactly like short ones.
[[nodiscard]] LineRead read_request_line(std::istream& in, std::string& line,
                                         std::size_t cap, bool& has_content) {
  line.clear();
  has_content = false;
  std::streambuf* buf = in.rdbuf();
  bool over = false;
  bool any = false;
  for (;;) {
    const int ch = buf->sbumpc();
    if (ch == std::char_traits<char>::eof()) {
      in.setstate(std::ios::eofbit);
      if (!any) return LineRead::Eof;
      return over ? LineRead::OverCap : LineRead::Ok;
    }
    any = true;
    if (ch == '\n') return over ? LineRead::OverCap : LineRead::Ok;
    const char c = static_cast<char>(ch);
    if (c != ' ' && c != '\t' && c != '\r' && c != '\v' && c != '\f') {
      has_content = true;
    }
    if (over) continue;  // draining the rest of an over-cap line
    line.push_back(c);
    if (cap > 0 && line.size() > cap) {
      over = true;
      line.clear();
      line.shrink_to_fit();
    }
  }
}

}  // namespace

int CompileService::serve(std::istream& in, std::ostream& out) {
  // Workers answer concurrently; one mutex keeps response lines whole.
  // serve() outlives every pending done-callback (wait_idle below), so
  // capturing these locals by reference is safe.
  std::mutex out_mutex;
  const auto write_line = [&out, &out_mutex](const ServiceResponse& response) {
    std::lock_guard<std::mutex> lock(out_mutex);
    out << response.to_json().dump() << "\n";
    out.flush();
  };

  int lines = 0;
  std::string line;
  for (;;) {
    bool has_content = false;
    const LineRead read = read_request_line(
        in, line, config_.max_request_line_bytes, has_content);
    if (read == LineRead::Eof) break;
    if (!has_content) continue;
    ++lines;
    if (read == LineRead::OverCap) {
      obs::add(config_.obs, "service.requests.invalid");
      ServiceResponse response;
      response.status = "error";
      response.error =
          "request line exceeds " +
          std::to_string(config_.max_request_line_bytes) + "-byte cap";
      write_line(response);
      continue;
    }
    ServiceRequest request;
    try {
      request = ServiceRequest::from_json(Json::parse(line));
    } catch (const std::exception& e) {
      obs::add(config_.obs, "service.requests.invalid");
      ServiceResponse response;
      response.status = "error";
      response.error = std::string("bad request: ") + e.what();
      write_line(response);
      continue;
    }
    if (request.op == "compile") {
      submit(std::move(request), write_line);
    } else {
      // Control ops answer inline: a disconnect must flush the client's
      // queue *now*, not after it.
      write_line(handle(request));
    }
  }
  wait_idle();
  return lines;
}

}  // namespace qmap::service
