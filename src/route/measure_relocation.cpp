#include "route/measure_relocation.hpp"

#include <limits>

#include "common/error.hpp"

namespace qmap {

Circuit relocate_measurements(const Circuit& circuit, const Device& device,
                              Placement& placement_io,
                              const ArchArtifacts* artifacts) {
  const int m = device.num_qubits();
  if (circuit.num_qubits() != m) {
    throw MappingError(
        "relocate_measurements expects a routed circuit on physical qubits");
  }
  // Fast path: everything measurable.
  if (device.measurable_mask().empty()) return circuit;

  // Defer terminal measurements to the end of the gate list: a measurement
  // with no later gate on its qubit commutes to the end trivially, and
  // routers legitimately emit measurements early once a qubit's work is
  // done. After this reordering every relocation happens in the trailing
  // measurement block.
  std::vector<bool> qubit_used_later(static_cast<std::size_t>(m), false);
  std::vector<char> deferred(circuit.size(), 0);
  for (std::size_t i = circuit.size(); i-- > 0;) {
    const Gate& gate = circuit.gate(i);
    if (gate.kind == GateKind::Measure &&
        !qubit_used_later[static_cast<std::size_t>(gate.qubits[0])]) {
      deferred[i] = 1;
      continue;  // a deferred measure does not block earlier deferrals
    }
    for (const int q : gate.qubits) {
      qubit_used_later[static_cast<std::size_t>(q)] = true;
    }
  }
  Circuit reordered(m, circuit.name());
  for (std::size_t i = 0; i < circuit.size(); ++i) {
    if (!deferred[i]) reordered.add(circuit.gate(i));
  }
  for (std::size_t i = 0; i < circuit.size(); ++i) {
    if (deferred[i]) reordered.add(circuit.gate(i));
  }

  // cur[p] = current physical location of the wire the input circuit
  // addresses as p (identity until relocation SWAPs are inserted).
  std::vector<int> cur(static_cast<std::size_t>(m));
  std::vector<int> cur_inverse(static_cast<std::size_t>(m));
  for (int p = 0; p < m; ++p) {
    cur[static_cast<std::size_t>(p)] = p;
    cur_inverse[static_cast<std::size_t>(p)] = p;
  }
  std::vector<bool> used(static_cast<std::size_t>(m), false);

  // Distance reads in the candidate scan below go through a flat row
  // pointer — the attached artifacts matrix when present, else the
  // device's warmed cache — instead of the per-call accessor (which pays
  // an atomic check plus nested-vector indexing per candidate).
  const std::vector<std::vector<int>>* fallback_rows =
      artifacts == nullptr ? &device.coupling().distance_rows() : nullptr;

  Circuit out(m, circuit.name());
  bool relocated = false;
  const auto emit_swap = [&](int a, int b) {
    out.swap(a, b);
    placement_io.apply_swap(a, b);
    const int wire_a = cur_inverse[static_cast<std::size_t>(a)];
    const int wire_b = cur_inverse[static_cast<std::size_t>(b)];
    std::swap(cur[static_cast<std::size_t>(wire_a)],
              cur[static_cast<std::size_t>(wire_b)]);
    std::swap(cur_inverse[static_cast<std::size_t>(a)],
              cur_inverse[static_cast<std::size_t>(b)]);
  };

  for (const Gate& gate : reordered) {
    Gate remapped = gate;
    for (int& q : remapped.qubits) q = cur[static_cast<std::size_t>(q)];
    if (remapped.kind != GateKind::Measure) {
      if (relocated && remapped.kind != GateKind::Barrier) {
        throw MappingError(
            "relocate_measurements: unitary gate after a relocated "
            "measurement — relocation supports terminal measurements only");
      }
      out.add(std::move(remapped));
      continue;
    }
    const int location = remapped.qubits[0];
    if (device.measurable(location) &&
        !used[static_cast<std::size_t>(location)]) {
      used[static_cast<std::size_t>(location)] = true;
      out.add(std::move(remapped));
      continue;
    }
    // Find the nearest free measurable qubit.
    int best = -1;
    int best_distance = std::numeric_limits<int>::max();
    const int* distance_row =
        artifacts != nullptr
            ? artifacts->distance_data() + static_cast<std::size_t>(location) *
                                               static_cast<std::size_t>(m)
            : (*fallback_rows)[static_cast<std::size_t>(location)].data();
    for (int candidate = 0; candidate < m; ++candidate) {
      if (!device.measurable(candidate) ||
          used[static_cast<std::size_t>(candidate)]) {
        continue;
      }
      const int d = distance_row[candidate];
      if (d >= 0 && d < best_distance) {
        best_distance = d;
        best = candidate;
      }
    }
    if (best < 0) {
      throw MappingError(
          "relocate_measurements: no reachable free measurable qubit for Q" +
          std::to_string(location));
    }
    const std::vector<int> path =
        artifacts != nullptr ? artifacts->shortest_path(location, best)
                             : device.coupling().shortest_path(location, best);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      emit_swap(path[i], path[i + 1]);
    }
    relocated = true;
    used[static_cast<std::size_t>(best)] = true;
    out.measure(best, remapped.cbit);
  }
  return out;
}

}  // namespace qmap
