// QASM front-end tests: OpenQASM 2.0 and cQASM parsing, writing, round
// trips, angle expressions, broadcast semantics, and diagnostics.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "qasm/cqasm.hpp"
#include "qasm/expr.hpp"
#include "qasm/openqasm.hpp"
#include "sim/equivalence.hpp"
#include "workloads/workloads.hpp"

namespace qmap {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Expr, EvaluatesArithmetic) {
  EXPECT_DOUBLE_EQ(eval_expression("1+2*3"), 7.0);
  EXPECT_DOUBLE_EQ(eval_expression("(1+2)*3"), 9.0);
  EXPECT_DOUBLE_EQ(eval_expression("-4/2"), -2.0);
  EXPECT_DOUBLE_EQ(eval_expression("2^10"), 1024.0);
  EXPECT_NEAR(eval_expression("pi/2"), kPi / 2.0, 1e-12);
  EXPECT_NEAR(eval_expression("-3*pi/4"), -3.0 * kPi / 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(eval_expression("1.5e2"), 150.0);
}

TEST(Expr, RejectsMalformedInput) {
  EXPECT_THROW((void)eval_expression("1+"), ParseError);
  EXPECT_THROW((void)eval_expression("foo"), ParseError);
  EXPECT_THROW((void)eval_expression("(1"), ParseError);
  EXPECT_THROW((void)eval_expression("1/0"), ParseError);
  EXPECT_THROW((void)eval_expression("1 2"), ParseError);
}

TEST(OpenQasm, ParsesBasicProgram) {
  const Circuit c = parse_openqasm(R"(
    OPENQASM 2.0;
    include "qelib1.inc";
    qreg q[3];
    creg c[3];
    h q[0];
    cx q[0], q[1];
    rz(pi/4) q[2];
    u3(0.1, 0.2, 0.3) q[1];
    measure q[0] -> c[0];
    barrier q[1], q[2];
  )");
  EXPECT_EQ(c.num_qubits(), 3);
  EXPECT_EQ(c.num_cbits(), 3);
  ASSERT_EQ(c.size(), 6u);
  EXPECT_EQ(c.gate(0).kind, GateKind::H);
  EXPECT_EQ(c.gate(1).kind, GateKind::CX);
  EXPECT_EQ(c.gate(2).kind, GateKind::Rz);
  EXPECT_NEAR(c.gate(2).params[0], kPi / 4.0, 1e-12);
  EXPECT_EQ(c.gate(3).kind, GateKind::U);
  EXPECT_EQ(c.gate(4).kind, GateKind::Measure);
  EXPECT_EQ(c.gate(5).kind, GateKind::Barrier);
}

TEST(OpenQasm, MultipleRegistersAreFlattened) {
  const Circuit c = parse_openqasm(R"(
    OPENQASM 2.0;
    qreg a[2];
    qreg b[2];
    cx a[1], b[0];
  )");
  EXPECT_EQ(c.num_qubits(), 4);
  EXPECT_EQ(c.gate(0).qubits, (std::vector<int>{1, 2}));
}

TEST(OpenQasm, BroadcastSemantics) {
  const Circuit c = parse_openqasm(R"(
    OPENQASM 2.0;
    qreg q[3];
    creg c[3];
    h q;
    measure q -> c;
  )");
  EXPECT_EQ(c.size(), 6u);
  EXPECT_EQ(c.gate(0).kind, GateKind::H);
  EXPECT_EQ(c.gate(2).qubits[0], 2);
  EXPECT_EQ(c.gate(5).cbit, 2);
}

TEST(OpenQasm, U2Alias) {
  const Circuit c = parse_openqasm(
      "OPENQASM 2.0; qreg q[1]; u2(0.5, 0.25) q[0];");
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.gate(0).kind, GateKind::U);
  EXPECT_NEAR(c.gate(0).params[0], kPi / 2.0, 1e-12);
  EXPECT_NEAR(c.gate(0).params[1], 0.5, 1e-12);
}

TEST(OpenQasm, GateDefinitionsExpand) {
  const Circuit c = parse_openqasm(R"(
    OPENQASM 2.0;
    qreg q[3];
    gate bell a, b { h a; cx a, b; }
    bell q[0], q[1];
    bell q[1], q[2];
  )");
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c.gate(0).kind, GateKind::H);
  EXPECT_EQ(c.gate(1).kind, GateKind::CX);
  EXPECT_EQ(c.gate(1).qubits, (std::vector<int>{0, 1}));
  EXPECT_EQ(c.gate(3).qubits, (std::vector<int>{1, 2}));
}

TEST(OpenQasm, ParameterizedGateDefinitions) {
  const Circuit c = parse_openqasm(R"(
    OPENQASM 2.0;
    qreg q[2];
    gate cphase(theta) a, b { rz(theta/2) a; cx a, b; rz(-theta/2) b; cx a, b; rz(theta/2) b; }
    cphase(pi/2) q[0], q[1];
  )");
  ASSERT_EQ(c.size(), 5u);
  EXPECT_EQ(c.gate(0).kind, GateKind::Rz);
  EXPECT_NEAR(c.gate(0).params[0], kPi / 4.0, 1e-9);
  // Semantically a controlled phase.
  Circuit reference(2);
  reference.cp(kPi / 2.0, 0, 1);
  EXPECT_TRUE(circuits_equivalent_exact(c, reference, 1e-7));
}

TEST(OpenQasm, NestedGateDefinitions) {
  const Circuit c = parse_openqasm(R"(
    OPENQASM 2.0;
    qreg q[2];
    gate mycx a, b { cx a, b; }
    gate double_cx a, b { mycx a, b; mycx a, b; }
    double_cx q[0], q[1];
  )");
  EXPECT_EQ(c.size(), 2u);
}

TEST(OpenQasm, GateDefinitionDiagnostics) {
  // Wrong arity at the call site.
  EXPECT_THROW((void)parse_openqasm(
                   "OPENQASM 2.0; qreg q[2]; gate g a, b { cx a, b; } "
                   "g q[0];"),
               ParseError);
  // Wrong parameter count.
  EXPECT_THROW((void)parse_openqasm(
                   "OPENQASM 2.0; qreg q[1]; gate g(t) a { rz(t) a; } "
                   "g q[0];"),
               ParseError);
  // Duplicate definition.
  EXPECT_THROW((void)parse_openqasm(
                   "OPENQASM 2.0; qreg q[1]; gate g a { x a; } "
                   "gate g a { y a; } g q[0];"),
               ParseError);
  // Recursive definition hits the depth guard.
  EXPECT_THROW(
      (void)parse_openqasm("OPENQASM 2.0; qreg q[2]; "
                           "gate g a, b { g b, a; } g q[0], q[1];"),
      ParseError);
  // Unterminated body.
  EXPECT_THROW((void)parse_openqasm(
                   "OPENQASM 2.0; qreg q[1]; gate g a { x a;"),
               ParseError);
}

TEST(OpenQasm, Diagnostics) {
  EXPECT_THROW((void)parse_openqasm("qreg q[1];"), ParseError);  // no header
  EXPECT_THROW((void)parse_openqasm("OPENQASM 2.0; h q[0];"), ParseError);
  EXPECT_THROW(
      (void)parse_openqasm("OPENQASM 2.0; qreg q[2]; cx q[0], q[5];"),
      ParseError);
  EXPECT_THROW(
      (void)parse_openqasm("OPENQASM 2.0; qreg q[2]; frob q[0];"),
      ParseError);
  EXPECT_THROW((void)parse_openqasm("OPENQASM 2.0; qreg q[2]; h q[0]"),
               ParseError);  // missing semicolon
  EXPECT_THROW(
      (void)parse_openqasm("OPENQASM 2.0; qreg q[2]; if (c == 1) x q[0];"),
      ParseError);  // unsupported construct is reported, not ignored
}

TEST(OpenQasm, LineNumbersInErrors) {
  try {
    (void)parse_openqasm("OPENQASM 2.0;\nqreg q[2];\nbadgate q[0];\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

TEST(OpenQasm, CommentsAreIgnored) {
  const Circuit c = parse_openqasm(
      "OPENQASM 2.0; // header\nqreg q[1];\n// a comment; with semicolon is "
      "tricky\nh q[0]; // trailing\n");
  EXPECT_EQ(c.size(), 1u);
}

TEST(OpenQasm, RoundTripPreservesSemantics) {
  Rng rng(31);
  const Circuit original = workloads::random_circuit(4, 40, rng, 0.35);
  const Circuit reparsed = parse_openqasm(to_openqasm(original));
  EXPECT_EQ(reparsed.num_qubits(), original.num_qubits());
  EXPECT_TRUE(circuits_equivalent_exact(original, reparsed, 1e-7));
}

TEST(OpenQasm, RoundTripWithMeasurementsAndQft) {
  Circuit original = workloads::qft(4);
  original.measure_all();
  const Circuit reparsed = parse_openqasm(to_openqasm(original));
  EXPECT_EQ(reparsed.size(), original.size());
  EXPECT_TRUE(circuits_equivalent_exact(original.unitary_part(),
                                        reparsed.unitary_part(), 1e-7));
}

TEST(Cqasm, ParsesBasicProgram) {
  const Circuit c = parse_cqasm(R"(
version 1.0
# the paper's Fig. 2 input language
qubits 3

prep_z q[0]
h q[0]
cnot q[0], q[1]
rz q[2], 3.14159/2
toffoli q[0], q[1], q[2]
measure q[2]
)");
  EXPECT_EQ(c.num_qubits(), 3);
  ASSERT_EQ(c.size(), 5u);  // prep_z on fresh register is a no-op
  EXPECT_EQ(c.gate(0).kind, GateKind::H);
  EXPECT_EQ(c.gate(1).kind, GateKind::CX);
  EXPECT_EQ(c.gate(2).kind, GateKind::Rz);
  EXPECT_EQ(c.gate(3).kind, GateKind::CCX);
  EXPECT_EQ(c.gate(4).kind, GateKind::Measure);
}

TEST(Cqasm, ParallelBundlesAreFlattened) {
  const Circuit c = parse_cqasm(
      "version 1.0\nqubits 3\n{ h q[0] | h q[1] | x q[2] }\ncz q[0], q[1]\n");
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.gate(2).kind, GateKind::X);
}

TEST(Cqasm, RotationShorthands) {
  const Circuit c = parse_cqasm(
      "version 1.0\nqubits 1\nx90 q[0]\nmy90 q[0]\nsdag q[0]\n");
  EXPECT_EQ(c.gate(0).kind, GateKind::Rx);
  EXPECT_NEAR(c.gate(0).params[0], kPi / 2.0, 1e-9);
  EXPECT_EQ(c.gate(1).kind, GateKind::Ry);
  EXPECT_NEAR(c.gate(1).params[0], -kPi / 2.0, 1e-9);
  EXPECT_EQ(c.gate(2).kind, GateKind::Sdg);
}

TEST(Cqasm, Diagnostics) {
  EXPECT_THROW((void)parse_cqasm("version 1.0\nh q[0]\n"), ParseError);
  EXPECT_THROW((void)parse_cqasm("version 1.0\nqubits 2\nh q[7]\n"),
               ParseError);
  EXPECT_THROW((void)parse_cqasm("version 1.0\nqubits 2\nbork q[0]\n"),
               ParseError);
  EXPECT_THROW((void)parse_cqasm("version 1.0\nqubits 2\n{ h q[0] | x q[1]\n"),
               ParseError);
}

TEST(Cqasm, RoundTripPreservesSemantics) {
  Circuit original(3, "rt");
  original.h(0).cx(0, 1).rz(0.7, 2).swap(1, 2).t(0).cz(0, 2);
  const Circuit reparsed = parse_cqasm(to_cqasm(original));
  EXPECT_TRUE(circuits_equivalent_exact(original, reparsed, 1e-8));
}

TEST(Cqasm, WriterRejectsInexpressibleGates) {
  Circuit c(1);
  c.u(0.1, 0.2, 0.3, 0);
  EXPECT_THROW((void)to_cqasm(c), ParseError);
}

TEST(CrossFormat, OpenQasmToCqasm) {
  const Circuit c = parse_openqasm(
      "OPENQASM 2.0; qreg q[2]; h q[0]; cx q[0], q[1];");
  const Circuit again = parse_cqasm(to_cqasm(c));
  EXPECT_TRUE(circuits_equivalent_exact(c, again, 1e-9));
}

TEST(Files, SaveAndLoadRoundTrip) {
  const std::string path = testing::TempDir() + "/qmap_roundtrip.qasm";
  const Circuit original = workloads::ghz(3);
  save_openqasm(original, path);
  const Circuit loaded = load_openqasm(path);
  EXPECT_TRUE(circuits_equivalent_exact(original, loaded, 1e-9));
  const std::string cpath = testing::TempDir() + "/qmap_roundtrip.cq";
  save_cqasm(original, cpath);
  EXPECT_TRUE(circuits_equivalent_exact(original, load_cqasm(cpath), 1e-9));
}

}  // namespace
}  // namespace qmap
