#include "verify/fuzzer.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "decompose/decomposer.hpp"
#include "sim/equivalence.hpp"
#include "sim/stabilizer.hpp"
#include "verify/reproducer.hpp"
#include "workloads/workloads.hpp"

namespace qmap::verify {

std::string failure_kind_name(FailureKind kind) {
  switch (kind) {
    case FailureKind::None: return "none";
    case FailureKind::Validity: return "validity";
    case FailureKind::Equivalence: return "equivalence";
    case FailureKind::Exception: return "exception";
  }
  return "none";
}

RunOutcome run_strategy(const Circuit& circuit, const Device& device,
                        const FuzzStrategy& strategy, std::uint64_t seed,
                        int trials, FaultInjection fault,
                        int max_statevector_qubits) {
  RunOutcome outcome;
  try {
    CompilerOptions options;
    options.placer = strategy.placer;
    options.router = strategy.router;
    options.seed = seed;
    const Compiler compiler(device, options);
    CompilationResult result;
    if (strategy.finisher) {
      // The facade preset with token_swap_finisher spliced in between
      // router and postroute (all other options at their defaults, which
      // is what the facade uses too).
      PipelineSpec spec;
      spec.append("decompose");
      Json placer_options;
      placer_options["algorithm"] = Json(strategy.placer);
      spec.append("placer", std::move(placer_options));
      Json router_options;
      router_options["algorithm"] = Json(strategy.router);
      spec.append("router", std::move(router_options));
      spec.append("token_swap_finisher");
      spec.append("postroute");
      spec.append("schedule");
      result = compiler.compile(circuit, spec);
    } else {
      result = compiler.compile(circuit);
    }
    inject_fault(result, device, fault);
    outcome.final_gates = result.final_circuit.size();
    outcome.added_swaps = result.routing.added_swaps;

    const ValidityReport validity =
        ValidityChecker(device).check_result(result);
    if (!validity.ok()) {
      outcome.kind = FailureKind::Validity;
      outcome.message = validity.to_string();
      return outcome;
    }

    // Equivalence oracle: exact tableau for Clifford circuits (any
    // width), randomized state-vector otherwise (width-capped).
    if (is_clifford_circuit(result.original) &&
        is_clifford_circuit(result.final_circuit)) {
      outcome.equivalence_checked = true;
      if (!clifford_mapping_equivalent(
              result.original, result.final_circuit,
              result.routing.initial.wire_to_phys(),
              result.routing.final.wire_to_phys())) {
        outcome.kind = FailureKind::Equivalence;
        outcome.message = "Clifford tableau mismatch under the reported "
                          "placements";
      }
    } else if (device.num_qubits() <= max_statevector_qubits) {
      outcome.equivalence_checked = true;
      Rng rng(Rng::derive_stream(seed, 0x5EED));
      if (!mapping_equivalent(result.original, result.final_circuit,
                              result.routing.initial.wire_to_phys(),
                              result.routing.final.wire_to_phys(), rng,
                              trials)) {
        outcome.kind = FailureKind::Equivalence;
        outcome.message = "state-vector mismatch under the reported "
                          "placements (" + std::to_string(trials) +
                          " trials)";
      }
    }
  } catch (const std::exception& e) {
    outcome.kind = FailureKind::Exception;
    outcome.message = e.what();
  }
  return outcome;
}

std::string FuzzFailure::to_string() const {
  return "circuit #" + std::to_string(circuit_index) + " on " + device +
         " via " + strategy.label() + ": " + failure_kind_name(kind) +
         " (" + std::to_string(circuit.size()) + " gates, shrunk to " +
         std::to_string(shrunk.size()) + ")\n  " + message;
}

DifferentialFuzzer::DifferentialFuzzer(std::vector<Device> devices,
                                       FuzzOptions options)
    : devices_(std::move(devices)), options_(std::move(options)) {
  if (devices_.empty()) {
    throw MappingError("DifferentialFuzzer: need at least one device");
  }
  // Fail fast on misspelled strategy names (the factory error lists the
  // valid ones) and warm every device's distance cache so worker threads
  // only ever read shared state.
  for (const std::string& placer : options_.placers) (void)make_placer(placer);
  for (const std::string& router : options_.routers) (void)make_router(router);
  for (Device& device : devices_) device.coupling().precompute_distances();
}

std::vector<FuzzStrategy> DifferentialFuzzer::strategies_for(
    const Device& device) const {
  const std::vector<std::string>& placers =
      options_.placers.empty() ? known_placers() : options_.placers;
  const std::vector<std::string>& routers =
      options_.routers.empty() ? known_routers() : options_.routers;
  std::vector<FuzzStrategy> strategies;
  for (const std::string& placer : placers) {
    if (placer == "reliability" && !device.has_noise()) continue;
    if (placer == "exhaustive" &&
        device.num_qubits() > options_.exhaustive_placer_max_device) {
      continue;
    }
    for (const std::string& router : routers) {
      if (router == "reliability" && !device.has_noise()) continue;
      if (router == "shuttle" && !device.supports_shuttling()) continue;
      if (router == "exact" &&
          device.num_qubits() > options_.exact_router_max_device) {
        continue;
      }
      strategies.push_back(FuzzStrategy{placer, router});
      if (std::find(options_.finisher_routers.begin(),
                    options_.finisher_routers.end(),
                    router) != options_.finisher_routers.end()) {
        strategies.push_back(FuzzStrategy{placer, router, /*finisher=*/true});
      }
    }
  }
  return strategies;
}

namespace {

/// One run's identity + outcome, recorded per circuit so the report can
/// be assembled in deterministic (circuit, device, strategy) order no
/// matter which worker ran what.
struct RunRecord {
  std::size_t device_index = 0;
  FuzzStrategy strategy;
  std::uint64_t seed = 0;
  RunOutcome outcome;
};

struct CircuitRecord {
  Circuit circuit;
  std::vector<RunRecord> runs;
};

}  // namespace

FuzzReport DifferentialFuzzer::run() const {
  ThreadPool pool(options_.num_threads);
  return run(pool);
}

FuzzReport DifferentialFuzzer::run(ThreadPool& pool) const {
  const auto t0 = std::chrono::steady_clock::now();
  obs::Observer* const obs = options_.obs;
  obs::Span campaign_span(obs, "fuzz_campaign", "verify");
  if (campaign_span.active()) {
    campaign_span.arg("circuits", std::to_string(options_.num_circuits));
  }
  const std::uint64_t campaign_seq = campaign_span.seq();
  // Strategy sets are device-dependent but circuit-independent; compute
  // once so every worker agrees on the run enumeration (and the derived
  // seeds) without re-deriving it.
  std::vector<std::vector<FuzzStrategy>> per_device;
  per_device.reserve(devices_.size());
  for (const Device& device : devices_) {
    per_device.push_back(strategies_for(device));
  }

  std::vector<CircuitRecord> records(
      static_cast<std::size_t>(options_.num_circuits));
  std::vector<std::future<void>> pending;
  pending.reserve(records.size());
  for (int k = 0; k < options_.num_circuits; ++k) {
    pending.push_back(pool.async([this, &per_device, &records, k, obs,
                                  campaign_seq] {
      // Explicit parent: this pool worker's span stack does not contain
      // the campaign span.
      obs::Span case_span(obs, "fuzz_case", "verify", campaign_seq);
      if (case_span.active()) case_span.arg("index", std::to_string(k));
      const auto case_start = std::chrono::steady_clock::now();
      CircuitRecord& record = records[static_cast<std::size_t>(k)];
      const std::uint64_t circuit_seed =
          Rng::derive_stream(options_.base_seed, static_cast<std::uint64_t>(k));
      Rng rng(circuit_seed);
      const int width = rng.integer(options_.min_qubits, options_.max_qubits);
      const int gates = rng.integer(options_.min_gates, options_.max_gates);
      record.circuit =
          options_.clifford_only
              ? workloads::random_clifford_circuit(
                    width, gates, rng, options_.two_qubit_fraction)
              : workloads::random_circuit(width, gates, rng,
                                          options_.two_qubit_fraction);
      record.circuit.set_name("fuzz" + std::to_string(k));
      std::uint64_t ordinal = 0;
      for (std::size_t d = 0; d < devices_.size(); ++d) {
        for (const FuzzStrategy& strategy : per_device[d]) {
          ++ordinal;  // advance even when skipped: seeds stay aligned
          if (width > devices_[d].num_qubits()) continue;
          RunRecord run;
          run.device_index = d;
          run.strategy = strategy;
          run.seed = Rng::derive_stream(circuit_seed, ordinal);
          run.outcome = run_strategy(record.circuit, devices_[d], strategy,
                                     run.seed, options_.trials,
                                     options_.fault,
                                     options_.max_statevector_qubits);
          record.runs.push_back(std::move(run));
        }
      }
      // Timing histogram: "_ms" names are excluded from fingerprints, so
      // wall-clock jitter here never breaks metrics determinism.
      obs::observe(obs, "fuzz.case_ms",
                   std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - case_start)
                       .count());
    }));
  }
  for (std::future<void>& future : pending) future.get();

  // Deterministic aggregation in (circuit, device, strategy) order.
  FuzzReport report;
  report.circuits = options_.num_circuits;
  report.num_threads = pool.size();
  std::vector<StrategyTally> tallies;
  const auto tally_for = [&tallies](const FuzzStrategy& s) -> StrategyTally& {
    for (StrategyTally& t : tallies) {
      if (t.strategy.placer == s.placer && t.strategy.router == s.router) {
        return t;
      }
    }
    tallies.push_back(StrategyTally{s, 0, 0, 0, 0});
    return tallies.back();
  };
  for (int k = 0; k < options_.num_circuits; ++k) {
    const CircuitRecord& record = records[static_cast<std::size_t>(k)];
    for (const RunRecord& run : record.runs) {
      ++report.runs;
      StrategyTally& tally = tally_for(run.strategy);
      ++tally.runs;
      tally.total_added_swaps += run.outcome.added_swaps;
      if (!run.outcome.equivalence_checked &&
          run.outcome.kind == FailureKind::None) {
        ++tally.equivalence_skipped;
      }
      if (run.outcome.kind == FailureKind::None) continue;
      ++tally.failures;
      FuzzFailure failure;
      failure.circuit_index = k;
      failure.seed = run.seed;
      failure.device = devices_[run.device_index].name();
      failure.strategy = run.strategy;
      failure.kind = run.outcome.kind;
      failure.message = run.outcome.message;
      failure.circuit = record.circuit;
      failure.shrunk = record.circuit;
      if (options_.shrink_failures) {
        const Device& device = devices_[run.device_index];
        const auto still_fails = [&](const Circuit& candidate) {
          return run_strategy(candidate, device, run.strategy, run.seed,
                              options_.trials, options_.fault,
                              options_.max_statevector_qubits)
                     .kind != FailureKind::None;
        };
        const Shrinker::Result shrunk =
            Shrinker().shrink(record.circuit, still_fails);
        failure.shrunk = shrunk.circuit;
        failure.shrink_tests = shrunk.tests;
        // Re-derive the failure the *minimized* circuit exhibits — ddmin
        // accepts any failure kind, so it may differ from the original.
        const RunOutcome final_outcome =
            run_strategy(failure.shrunk, device, run.strategy, run.seed,
                         options_.trials, options_.fault,
                         options_.max_statevector_qubits);
        failure.kind = final_outcome.kind;
        failure.message = final_outcome.message;
      }
      if (!options_.reproducer_dir.empty()) {
        Reproducer repro;
        repro.circuit = failure.shrunk;
        repro.device = failure.device;
        repro.strategy = failure.strategy;
        repro.seed = failure.seed;
        repro.trials = options_.trials;
        repro.fault = options_.fault;
        repro.kind = failure_kind_name(failure.kind);
        repro.message = failure.message;
        const std::string stem =
            "repro_c" + std::to_string(k) + "_" + failure.device + "_" +
            failure.strategy.placer + "_" + failure.strategy.router;
        failure.reproducer_path =
            save_reproducer(repro, options_.reproducer_dir, stem);
      }
      report.failures.push_back(std::move(failure));
    }
  }
  report.tallies = std::move(tallies);
  report.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  // Deterministic post-join aggregation (same totals for any pool size).
  obs::add(obs, "fuzz.campaigns");
  obs::add(obs, "fuzz.circuits", static_cast<std::uint64_t>(report.circuits));
  obs::add(obs, "fuzz.runs", report.runs);
  obs::add(obs, "fuzz.failures", report.failures.size());
  obs::set_gauge(obs, "fuzz.last_wall_ms", report.wall_ms);
  return report;
}

namespace {

Json report_json(const FuzzReport& report, bool include_timing) {
  Json out;
  out["circuits"] = Json(report.circuits);
  out["runs"] = Json(report.runs);
  if (include_timing) {
    out["wall_ms"] = Json(report.wall_ms);
    out["num_threads"] = Json(report.num_threads);
  }
  JsonArray tallies;
  for (const StrategyTally& t : report.tallies) {
    Json entry;
    entry["placer"] = Json(t.strategy.placer);
    entry["router"] = Json(t.strategy.router);
    entry["runs"] = Json(t.runs);
    entry["failures"] = Json(t.failures);
    entry["equivalence_skipped"] = Json(t.equivalence_skipped);
    entry["added_swaps"] = Json(t.total_added_swaps);
    tallies.push_back(std::move(entry));
  }
  out["strategies"] = Json(std::move(tallies));
  JsonArray failures;
  for (const FuzzFailure& f : report.failures) {
    Json entry;
    entry["circuit_index"] = Json(f.circuit_index);
    entry["seed"] = Json(std::to_string(f.seed));
    entry["device"] = Json(f.device);
    entry["placer"] = Json(f.strategy.placer);
    entry["router"] = Json(f.strategy.router);
    entry["kind"] = Json(failure_kind_name(f.kind));
    entry["message"] = Json(f.message);
    entry["gates"] = Json(f.circuit.size());
    entry["shrunk_gates"] = Json(f.shrunk.size());
    if (!f.reproducer_path.empty()) {
      entry["reproducer"] = Json(f.reproducer_path);
    }
    failures.push_back(std::move(entry));
  }
  out["failures"] = Json(std::move(failures));
  return out;
}

}  // namespace

Json FuzzReport::to_json() const { return report_json(*this, true); }

std::string FuzzReport::fingerprint() const {
  return report_json(*this, false).dump();
}

std::string FuzzReport::report() const {
  char buffer[192];
  std::string out;
  std::snprintf(buffer, sizeof(buffer),
                "fuzz: %d circuits, %zu runs, %zu failures, %.1f ms on %d "
                "threads\n",
                circuits, runs, failures.size(), wall_ms, num_threads);
  out += buffer;
  for (const StrategyTally& t : tallies) {
    std::snprintf(buffer, sizeof(buffer),
                  "  %-28s runs %5zu  failures %4zu  eq-skipped %4zu  "
                  "swaps %6zu\n",
                  t.strategy.label().c_str(), t.runs, t.failures,
                  t.equivalence_skipped, t.total_added_swaps);
    out += buffer;
  }
  for (const FuzzFailure& failure : failures) {
    out += "  FAIL " + failure.to_string() + "\n";
  }
  return out;
}

}  // namespace qmap::verify
