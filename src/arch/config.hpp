// JSON device configuration files.
//
// Sec. V: "It is embedded in the OpenQL compiler and it adapts the quantum
// circuit to the quantum hardware constraints that are described in a
// configuration file. Note that Qmap can easily target other quantum
// devices by just changing the parameters in this file."
//
// Schema (all constraint sections optional):
// {
//   "name": "surface17",
//   "num_qubits": 17,
//   "edges": [[1, 5], ...],            // symmetric connections
//   "directed_edges": [[1, 0], ...],   // control -> target only
//   "native_two_qubit": "cz",
//   "native_single_qubit": ["rx", "ry"],
//   "durations": {"cycle_ns": 20, "single_qubit": 1, "two_qubit": 2,
//                 "measure": 30},
//   "frequency_groups": [1, 0, 2, ...],
//   "feedlines": [0, 1, ...],
//   "coordinates": [[-1, 3], ...]
// }
#pragma once

#include <string>

#include "arch/device.hpp"
#include "common/json.hpp"

namespace qmap {

[[nodiscard]] Device device_from_json(const Json& config);
[[nodiscard]] Device device_from_json_text(const std::string& text);
[[nodiscard]] Device load_device(const std::string& path);

[[nodiscard]] Json device_to_json(const Device& device);
void save_device(const Device& device, const std::string& path);

}  // namespace qmap
