#include "route/qmap_router.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "route/route_ir.hpp"

namespace qmap {

RoutingResult QmapRouter::route(const Circuit& circuit, const Device& device,
                                const Placement& initial) {
  const auto start_time = std::chrono::steady_clock::now();
  check_routable(circuit, device);
  const CouplingGraph& coupling = device.coupling();
  RouteArena& arena = RouteArena::scratch();
  const ArenaScope scope(arena);
  RouteCore core(circuit, device, artifacts(), DagMode::Sequential, initial,
                 arena);
  RoutingEmitter emitter(device, initial,
                         circuit.name() + "@" + device.name());
  // Output bound: every program gate plus room for SWAPs and direction
  // fixes; generous slack beats mid-route growth reallocations.
  emitter.reserve(circuit.size() * 3 + 16);

  const int num_phys = device.num_qubits();
  // Look-back state: when each physical qubit becomes free, in cycles.
  double* busy_until = arena.alloc<double>(num_phys);
  std::fill(busy_until, busy_until + num_phys, 0.0);
  const double swap_cycles =
      device.cycles_for(make_gate(GateKind::SWAP, {0, 1}));

  const auto occupy_pair = [&](int phys_a, int phys_b, double cycles) {
    const double start = std::max(busy_until[phys_a], busy_until[phys_b]);
    busy_until[phys_a] = start + cycles;
    busy_until[phys_b] = start + cycles;
  };
  const auto occupy_gate = [&](std::uint32_t node) {
    const Gate& gate = circuit.gate(node);
    const double cycles = device.cycles_for(gate);
    double start = 0.0;
    for (const int q : gate.qubits) {
      start = std::max(start, busy_until[core.phys_of(q)]);
    }
    for (const int q : gate.qubits) {
      busy_until[core.phys_of(q)] = start + cycles;
    }
  };

  std::uint8_t* relevant = arena.alloc<std::uint8_t>(num_phys);
  const std::size_t ext_cap =
      std::min(static_cast<std::size_t>(options_.extended_window),
               static_cast<std::size_t>(core.ir.num_two_qubit));
  std::uint32_t* extended = arena.alloc<std::uint32_t>(ext_cap);
  // Endpoint pairs of the front/extended gates, recollected per swap
  // decision (invariant across candidate edges).
  const std::size_t front_cap = core.ir.num_two_qubit;
  std::int32_t* front_pa = arena.alloc<std::int32_t>(front_cap);
  std::int32_t* front_pb = arena.alloc<std::int32_t>(front_cap);
  std::int32_t* ext_pa = arena.alloc<std::int32_t>(ext_cap);
  std::int32_t* ext_pb = arena.alloc<std::int32_t>(ext_cap);

  int stall_guard = 0;
  const int stall_limit = 10 * std::max(1, num_phys);
  std::uint64_t iterations = 0;
  std::uint64_t rescues = 0;
  while (!core.front.all_scheduled()) {
    check_cancelled();
    ++iterations;
    if (core.flush_executable(emitter, occupy_gate)) {
      stall_guard = 0;
      continue;
    }
    core.refresh_front();
    if (core.front_size == 0) {
      throw MappingError("qmap router: stalled without ready two-qubit gate");
    }
    const std::uint32_t num_extended = core.collect_extended(ext_cap, extended);

    core.mark_relevant(relevant);
    core.collect_endpoints(core.front_gates, core.front_size, front_pa,
                           front_pb);
    core.collect_endpoints(extended, num_extended, ext_pa, ext_pb);

    // Primary: distance improvement over front + lookahead. Secondary
    // (latency look-back): earliest finish time of the SWAP itself.
    double best_primary = std::numeric_limits<double>::infinity();
    double best_finish = std::numeric_limits<double>::infinity();
    int best_a = -1;
    int best_b = -1;
    for (const auto& edge : coupling.edges()) {
      if (!relevant[edge.a] && !relevant[edge.b]) continue;
      double primary = 0.0;
      for (std::uint32_t k = 0; k < core.front_size; ++k) {
        primary += core.dist_pair_swapped(front_pa[k], front_pb[k], edge.a,
                                          edge.b);
      }
      primary /= static_cast<double>(core.front_size);
      if (num_extended > 0) {
        double ext = 0.0;
        for (std::uint32_t k = 0; k < num_extended; ++k) {
          ext += core.dist_pair_swapped(ext_pa[k], ext_pb[k], edge.a, edge.b);
        }
        primary +=
            options_.extended_weight * ext / static_cast<double>(num_extended);
      }
      const double finish =
          std::max(busy_until[edge.a], busy_until[edge.b]) + swap_cycles;
      if (primary < best_primary - 1e-12 ||
          (std::abs(primary - best_primary) <= 1e-12 &&
           finish < best_finish)) {
        best_primary = primary;
        best_finish = finish;
        best_a = edge.a;
        best_b = edge.b;
      }
    }
    if (best_a < 0) throw MappingError("qmap router: no candidate SWAP");

    if (++stall_guard > stall_limit) {
      const std::uint32_t gate = core.front_gates[0];
      const int pa = core.phys_of(core.ir.q0[gate]);
      const int pb = core.phys_of(core.ir.q1[gate]);
      const std::vector<int> path = core.shortest_path(pa, pb);
      for (std::size_t i = 0; i + 2 < path.size(); ++i) {
        core.emit_swap(emitter, path[i], path[i + 1]);
        occupy_pair(path[i], path[i + 1], swap_cycles);
      }
      ++rescues;
      stall_guard = 0;
      continue;
    }

    core.emit_swap(emitter, best_a, best_b);
    occupy_pair(best_a, best_b, swap_cycles);
  }

  const double runtime_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_time)
          .count();
  RoutingResult result = std::move(emitter).finish(initial, runtime_ms);
  obs::add(observer(), "qmap_router.routes");
  obs::add(observer(), "qmap_router.iterations", iterations);
  obs::add(observer(), "qmap_router.rescues", rescues);
  obs::observe(observer(), "route.swaps_inserted",
               static_cast<double>(result.added_swaps));
  return result;
}

}  // namespace qmap
