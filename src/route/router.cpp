#include "route/router.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace qmap {

namespace {

// Gate construction for the emit hot path: the emitter's own adjacency /
// occupancy checks subsume make_gate's and Circuit::add's validation, so
// these build the Gate directly and append unchecked. One allocation per
// stored gate (the operand vector) is the floor imposed by Gate's layout.
void push1(Circuit& circuit, GateKind kind, int q) {
  Gate gate;
  gate.kind = kind;
  gate.qubits = {q};
  circuit.add_unchecked(std::move(gate));
}

void push2(Circuit& circuit, GateKind kind, int a, int b) {
  Gate gate;
  gate.kind = kind;
  gate.qubits = {a, b};
  circuit.add_unchecked(std::move(gate));
}

}  // namespace

std::string RoutingResult::to_string() const {
  char buffer[200];
  std::snprintf(buffer, sizeof(buffer),
                "swaps=%zu moves=%zu bridges=%zu direction_fixes=%zu "
                "gates=%zu runtime=%.3fms",
                added_swaps, added_moves, added_bridges, direction_fixes,
                circuit.size(), runtime_ms);
  return buffer;
}

StreamRouteStats Router::route_stream(GateSource& /*source*/,
                                      const Device& /*device*/,
                                      const Placement& /*initial*/,
                                      GateSink& /*sink*/,
                                      const StreamRouteOptions& /*options*/) {
  throw MappingError("router '" + name() +
                     "' does not support streaming; materialize the circuit "
                     "and call route()");
}

RoutingEmitter::RoutingEmitter(const Device& device, Placement placement,
                               std::string circuit_name)
    : device_(&device),
      placement_(std::move(placement)),
      circuit_(device.num_qubits(), std::move(circuit_name)) {}

void RoutingEmitter::emit_mapped(Gate physical) {
  for (int& q : physical.qubits) q = placement_.phys_of_program(q);
  if (!physical.is_two_qubit()) {
    circuit_.add_unchecked(std::move(physical));
    return;
  }
  const int a = physical.qubits[0];
  const int b = physical.qubits[1];
  const CouplingGraph& coupling = device_->coupling();
  if (!coupling.connected(a, b)) {
    throw MappingError("router bug: emitting two-qubit gate on non-adjacent "
                       "physical qubits Q" +
                       std::to_string(a) + ", Q" + std::to_string(b));
  }
  if (physical.is_directional() && !coupling.orientation_allowed(a, b)) {
    if (physical.kind != GateKind::CX) {
      throw MappingError("cannot invert direction of non-CX gate");
    }
    // Sec. IV: flip control/target with Hadamards.
    push1(circuit_, GateKind::H, a);
    push1(circuit_, GateKind::H, b);
    push2(circuit_, GateKind::CX, b, a);
    push1(circuit_, GateKind::H, a);
    push1(circuit_, GateKind::H, b);
    ++direction_fixes_;
    return;
  }
  circuit_.add_unchecked(std::move(physical));
}

void RoutingEmitter::emit_swap(int phys_a, int phys_b) {
  if (!device_->coupling().connected(phys_a, phys_b)) {
    throw MappingError("router bug: SWAP on non-adjacent physical qubits Q" +
                       std::to_string(phys_a) + ", Q" +
                       std::to_string(phys_b));
  }
  push2(circuit_, GateKind::SWAP, phys_a, phys_b);
  placement_.apply_swap(phys_a, phys_b);
  ++added_swaps_;
}

void RoutingEmitter::emit_move(int phys_from, int phys_to) {
  if (!device_->supports_shuttling()) {
    throw MappingError("router bug: Move on a device without shuttling");
  }
  if (!device_->coupling().connected(phys_from, phys_to)) {
    throw MappingError("router bug: Move on non-adjacent sites Q" +
                       std::to_string(phys_from) + ", Q" +
                       std::to_string(phys_to));
  }
  if (placement_.program_at_phys(phys_to) != -1) {
    throw MappingError("router bug: Move target Q" + std::to_string(phys_to) +
                       " is occupied");
  }
  circuit_.add(make_gate(GateKind::Move, {phys_from, phys_to}));
  placement_.apply_swap(phys_from, phys_to);
  ++added_moves_;
}

void RoutingEmitter::emit_bridge(int phys_c, int phys_m, int phys_t) {
  const CouplingGraph& coupling = device_->coupling();
  if (phys_c == phys_t || phys_c == phys_m || phys_m == phys_t) {
    throw MappingError("router bug: BRIDGE qubits Q" + std::to_string(phys_c) +
                       ", Q" + std::to_string(phys_m) + ", Q" +
                       std::to_string(phys_t) + " are not distinct");
  }
  if (!coupling.connected(phys_c, phys_m) ||
      !coupling.connected(phys_m, phys_t)) {
    throw MappingError("router bug: BRIDGE leg on non-adjacent physical "
                       "qubits (Q" +
                       std::to_string(phys_c) + " - Q" +
                       std::to_string(phys_m) + " - Q" +
                       std::to_string(phys_t) + ")");
  }
  if (coupling.connected(phys_c, phys_t)) {
    throw MappingError("router bug: BRIDGE between adjacent qubits Q" +
                       std::to_string(phys_c) + ", Q" +
                       std::to_string(phys_t) + "; emit the CX directly");
  }
  // CX(c,t) = CX(c,m) CX(m,t) CX(c,m) CX(m,t); identity on m.
  emit_physical_cx(phys_c, phys_m);
  emit_physical_cx(phys_m, phys_t);
  emit_physical_cx(phys_c, phys_m);
  emit_physical_cx(phys_m, phys_t);
  ++added_bridges_;
}

void RoutingEmitter::emit_physical_cx(int phys_control, int phys_target) {
  if (!device_->coupling().orientation_allowed(phys_control, phys_target)) {
    // Sec. IV: flip control/target with Hadamards.
    push1(circuit_, GateKind::H, phys_control);
    push1(circuit_, GateKind::H, phys_target);
    push2(circuit_, GateKind::CX, phys_target, phys_control);
    push1(circuit_, GateKind::H, phys_control);
    push1(circuit_, GateKind::H, phys_target);
    ++direction_fixes_;
    return;
  }
  push2(circuit_, GateKind::CX, phys_control, phys_target);
}

void RoutingEmitter::spill_if_needed() {
  if (sink_ == nullptr || circuit_.size() < spill_gates_) return;
  spill_all();
}

void RoutingEmitter::spill_all() {
  if (sink_ == nullptr || circuit_.empty()) return;
  // take / push / give back: put_chunk moves the gates out but leaves the
  // vector's capacity, so the emitter's output buffer is recycled and the
  // steady state allocates nothing.
  spill_buf_ = circuit_.take_gates();
  spilled_gates_ += spill_buf_.size();
  sink_->put_chunk(spill_buf_);
  spill_buf_.clear();
  circuit_.set_gates(std::move(spill_buf_));
}

RoutingResult RoutingEmitter::finish(const Placement& initial,
                                     double runtime_ms) && {
  RoutingResult result;
  result.circuit = std::move(circuit_);
  result.initial = initial;
  result.final = std::move(placement_);
  result.added_swaps = added_swaps_;
  result.added_moves = added_moves_;
  result.added_bridges = added_bridges_;
  result.direction_fixes = direction_fixes_;
  result.runtime_ms = runtime_ms;
  return result;
}

bool respects_coupling(const Circuit& circuit, const Device& device) {
  const CouplingGraph& coupling = device.coupling();
  for (const Gate& gate : circuit) {
    if (!gate.is_two_qubit()) continue;
    const int a = gate.qubits[0];
    const int b = gate.qubits[1];
    if (!coupling.connected(a, b)) return false;
    if (gate.is_directional() && !coupling.orientation_allowed(a, b)) {
      return false;
    }
  }
  return true;
}

void check_routable(const Circuit& circuit, const Device& device) {
  if (circuit.num_qubits() > device.num_qubits()) {
    throw MappingError("circuit has " + std::to_string(circuit.num_qubits()) +
                       " qubits; device '" + device.name() + "' has " +
                       std::to_string(device.num_qubits()));
  }
  for (const Gate& gate : circuit) {
    if (gate.kind == GateKind::Barrier) continue;
    if (gate.qubits.size() > 2) {
      throw MappingError(
          "circuit contains a gate of arity > 2; run gate decomposition "
          "before routing");
    }
  }
  if (!device.coupling().is_connected()) {
    throw MappingError("device coupling graph is disconnected");
  }
}

}  // namespace qmap
