file(REMOVE_RECURSE
  "CMakeFiles/bench_exact_scalability.dir/bench_exact_scalability.cpp.o"
  "CMakeFiles/bench_exact_scalability.dir/bench_exact_scalability.cpp.o.d"
  "bench_exact_scalability"
  "bench_exact_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exact_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
