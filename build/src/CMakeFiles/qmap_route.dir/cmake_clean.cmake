file(REMOVE_RECURSE
  "CMakeFiles/qmap_route.dir/route/astar_layer.cpp.o"
  "CMakeFiles/qmap_route.dir/route/astar_layer.cpp.o.d"
  "CMakeFiles/qmap_route.dir/route/bidirectional_placer.cpp.o"
  "CMakeFiles/qmap_route.dir/route/bidirectional_placer.cpp.o.d"
  "CMakeFiles/qmap_route.dir/route/exact.cpp.o"
  "CMakeFiles/qmap_route.dir/route/exact.cpp.o.d"
  "CMakeFiles/qmap_route.dir/route/measure_relocation.cpp.o"
  "CMakeFiles/qmap_route.dir/route/measure_relocation.cpp.o.d"
  "CMakeFiles/qmap_route.dir/route/naive.cpp.o"
  "CMakeFiles/qmap_route.dir/route/naive.cpp.o.d"
  "CMakeFiles/qmap_route.dir/route/qmap_router.cpp.o"
  "CMakeFiles/qmap_route.dir/route/qmap_router.cpp.o.d"
  "CMakeFiles/qmap_route.dir/route/router.cpp.o"
  "CMakeFiles/qmap_route.dir/route/router.cpp.o.d"
  "CMakeFiles/qmap_route.dir/route/sabre.cpp.o"
  "CMakeFiles/qmap_route.dir/route/sabre.cpp.o.d"
  "CMakeFiles/qmap_route.dir/route/shuttle.cpp.o"
  "CMakeFiles/qmap_route.dir/route/shuttle.cpp.o.d"
  "libqmap_route.a"
  "libqmap_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qmap_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
