// Chaos harness for the compile service's JSON-lines transport.
//
// The serve() loop's contract — every accepted request gets exactly one
// response, malformed bytes get a structured error, the process never
// dies — is only worth stating if it survives hostile wire conditions.
// This header provides the two seeded generators the chaos tests drive:
//
//   ChaosTransport  — a fault-injecting wire transformer. Takes clean
//                     request lines plus FaultSpecs drawn from the
//                     service.* points of the resilience FaultInjector
//                     registry and produces the corrupted byte stream a
//                     misbehaving client would send:
//                       service.truncate-line — cut the line short;
//                       service.garbage-bytes — splice non-UTF8 bytes in;
//                       service.oversize-line — inflate past the request
//                                               line cap;
//                       service.disconnect    — stop mid-line (EOF), the
//                                               rest of the stream is
//                                               never delivered;
//                       service.stall-write   — not a wire corruption:
//                                               honored by StallingStream
//                                               below, which models a slow
//                                               client draining responses.
//                     Decisions are pure functions of (seed, spec index,
//                     line index) via the same splitmix chaining the
//                     FaultInjector uses, so a fixed seed corrupts the
//                     same lines in the same way on every run and thread
//                     count — which is what lets the tests diff chaos-run
//                     cache fingerprints against fault-free runs.
//
//   RequestFuzzer   — a seeded generator of mixed-validity JSON-lines
//                     traffic: valid compiles (drawn from a small circuit
//                     x device x seed pool so the cache absorbs repeats),
//                     pings/stats, and the classic malformed shapes
//                     (non-JSON bytes, unknown fields, unknown ops,
//                     unknown devices, unparseable QASM, wrong types).
//                     Each item records whether a conforming service must
//                     answer it with a non-error status, so the matrix
//                     can assert exact per-request outcomes.
//
// Both are deterministic, allocation-only (no clocks, no global state),
// and live in the service library so the chaos tests, the tier-1 chaos
// leg, and future soak tools share one definition.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "resilience/fault_injector.hpp"

namespace qmap::service {

struct ChaosConfig {
  /// Armed wire faults. Points must be service.* names from
  /// resilience::known_fault_points(); anything else throws at
  /// construction (same contract as FaultInjector::add).
  std::vector<resilience::FaultSpec> faults;
  /// Seed for every fire/offset decision.
  std::uint64_t seed = 0x5EED;
  /// Bytes an oversize-line fault inflates the line to (must exceed the
  /// service's max_request_line_bytes to matter).
  std::size_t oversize_bytes = 1 << 16;
  /// Garbage bytes spliced in by garbage-bytes.
  std::size_t garbage_bytes = 16;
};

class ChaosTransport {
 public:
  /// One input line's fate on the corrupted wire.
  struct LineFate {
    std::string original;
    /// Bytes actually sent for this line (no trailing '\n'). Meaningless
    /// when !delivered.
    std::string wire;
    /// Names of the faults applied to this line (at most one today).
    std::vector<std::string> faults;
    /// True when the line reached the service byte-identical to the
    /// original — only these may be asserted against fault-free runs.
    bool intact = true;
    /// False once a disconnect fault cut the stream upstream of this line.
    bool delivered = true;
    /// True when the line is the disconnect point itself (a prefix was
    /// sent, then EOF with no newline).
    bool cut_here = false;
  };

  explicit ChaosTransport(ChaosConfig config);

  [[nodiscard]] const ChaosConfig& config() const noexcept { return config_; }

  /// Applies the armed faults to each line in order; deterministic for a
  /// fixed seed.
  [[nodiscard]] std::vector<LineFate> corrupt(
      const std::vector<std::string>& lines) const;

  /// Serializes the fates back into the byte stream the service reads:
  /// delivered lines joined with '\n', stopping (without a newline) at a
  /// disconnect cut.
  [[nodiscard]] static std::string wire(const std::vector<LineFate>& fates);

  /// Lines the service will actually consume from this wire text: every
  /// line whose trimmed content is non-empty gets exactly one response.
  [[nodiscard]] static int expected_lines(const std::string& wire_text);

 private:
  [[nodiscard]] bool fires_(std::size_t spec_index, double probability,
                            std::size_t line_index) const;
  [[nodiscard]] std::uint64_t draw_(std::size_t spec_index,
                                    std::size_t line_index,
                                    std::uint64_t salt) const;

  ChaosConfig config_;
};

/// An ostream whose streambuf sleeps `stall_ms` every `stall_every`
/// flushed responses — the service.stall-write fault: a client that
/// accepts bytes slowly. Writes are never lost, only delayed, so the
/// one-response-per-request accounting still holds; the harness asserts
/// the dispatchers tolerate the backpressure without deadlock.
class StallingStream : public std::ostream {
 public:
  StallingStream(std::ostream& sink, double stall_ms, int stall_every = 8);
  ~StallingStream() override;

  /// Number of times the stall fired.
  [[nodiscard]] int stalls() const noexcept;

 private:
  struct Buf;
  Buf* buf_;
};

struct FuzzItem {
  std::string line;
  /// Correlation id carried by the request ("" for lines with none, e.g.
  /// raw garbage).
  std::string id;
  /// True when a conforming service must answer with a non-"error" status
  /// (assuming the line arrives intact).
  bool well_formed = false;
  /// True for well-formed compile ops (these have fingerprints to pin).
  bool is_compile = false;
};

class RequestFuzzer {
 public:
  explicit RequestFuzzer(std::uint64_t seed = 0xFADE);

  /// Generates `n` mixed-validity request lines: ~70% well-formed
  /// (compile/ping/stats over a small circuit pool so caching absorbs the
  /// repeats), ~30% malformed in structurally distinct ways. Ids are
  /// unique ("f<k>"), so responses can be correlated exactly.
  [[nodiscard]] std::vector<FuzzItem> generate(int n);

 private:
  std::uint64_t seed_;
  int next_id_ = 0;
};

}  // namespace qmap::service
