#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>

#include "common/strings.hpp"

namespace qmap::obs {

namespace {

void append_event_prefix(std::string& out, const SpanRecord& span,
                         const char* phase, std::int64_t ts) {
  out += "{\"name\":";
  out += json_quote(span.name);
  out += ",\"cat\":";
  out += json_quote(span.category.empty() ? "span" : span.category);
  out += ",\"ph\":\"";
  out += phase;
  out += "\",\"ts\":";
  out += std::to_string(ts);
  out += ",\"pid\":0,\"tid\":";
  out += std::to_string(span.tid);
}

void append_begin(std::string& out, const SpanRecord& span) {
  append_event_prefix(out, span, "B", span.start_us);
  if (!span.args.empty()) {
    out += ",\"args\":{";
    bool first = true;
    for (const auto& [key, value] : span.args) {
      if (!first) out += ',';
      first = false;
      out += json_quote(key);
      out += ':';
      out += json_quote(value);
    }
    out += '}';
  }
  out += '}';
}

void append_end(std::string& out, const SpanRecord& span) {
  append_event_prefix(out, span, "E",
                      std::max(span.end_us, span.start_us));
  out += '}';
}

/// True when `ancestor_seq` appears on `span`'s parent chain. The chain
/// walk is bounded: a dropped intermediate span simply ends the walk.
bool has_ancestor(
    const SpanRecord& span, std::uint64_t ancestor_seq,
    const std::unordered_map<std::uint64_t, std::uint64_t>& parent_of) {
  std::uint64_t cursor = span.parent_seq;
  for (int depth = 0; depth < 256 && cursor != 0; ++depth) {
    if (cursor == ancestor_seq) return true;
    const auto it = parent_of.find(cursor);
    if (it == parent_of.end()) return false;
    cursor = it->second;
  }
  return false;
}

std::string chrome_trace_events(const std::vector<SpanRecord>& spans) {
  // seq -> parent_seq over the whole snapshot (parents may live on another
  // thread than their children).
  std::unordered_map<std::uint64_t, std::uint64_t> parent_of;
  parent_of.reserve(spans.size());
  for (const SpanRecord& span : spans) {
    parent_of.emplace(span.seq, span.parent_seq);
  }

  std::string out = "[";
  bool first_event = true;
  const auto emit = [&](const SpanRecord& span, bool begin) {
    if (!first_event) out += ",\n";
    first_event = false;
    begin ? append_begin(out, span) : append_end(out, span);
  };

  // Spans arrive sorted by (tid, seq) — per thread, that is begin order,
  // and RAII makes per-thread spans properly nested. Walk each thread's
  // spans with a stack: before opening the next span, close every open
  // span that is not one of its ancestors.
  std::size_t i = 0;
  while (i < spans.size()) {
    const int tid = spans[i].tid;
    std::vector<const SpanRecord*> stack;
    for (; i < spans.size() && spans[i].tid == tid; ++i) {
      const SpanRecord& span = spans[i];
      while (!stack.empty() &&
             !has_ancestor(span, stack.back()->seq, parent_of)) {
        emit(*stack.back(), /*begin=*/false);
        stack.pop_back();
      }
      emit(span, /*begin=*/true);
      stack.push_back(&span);
    }
    while (!stack.empty()) {
      emit(*stack.back(), /*begin=*/false);
      stack.pop_back();
    }
  }
  out += "]";
  return out;
}

}  // namespace

std::string export_chrome_trace(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":";
  out += chrome_trace_events(spans);
  out += "}";
  return out;
}

std::string export_chrome_trace(const Observer& observer) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":";
  out += chrome_trace_events(observer.trace().snapshot());
  out += ",\"metrics\":";
  out += observer.metrics().to_json().dump();
  out += "}";
  return out;
}

std::string export_metrics_json(const MetricsRegistry& metrics,
                                bool include_timing) {
  return metrics.to_json(include_timing).dump(2);
}

namespace {

void append_tree_node(std::string& out,
                      const std::vector<SpanRecord>& spans,
                      const std::multimap<std::uint64_t, std::size_t>& children,
                      std::size_t index, int depth) {
  const SpanRecord& span = spans[index];
  out.append(static_cast<std::size_t>(2 * depth), ' ');
  out += "- ";
  out += span.name;
  if (!span.category.empty()) {
    out += " [" + span.category + "]";
  }
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), " %.3f ms", span.duration_ms());
  out += buffer;
  if (!span.args.empty()) {
    out += " {";
    bool first = true;
    for (const auto& [key, value] : span.args) {
      if (!first) out += ", ";
      first = false;
      out += key + "=" + value;
    }
    out += "}";
  }
  out += "\n";
  const auto [begin, end] = children.equal_range(span.seq);
  for (auto it = begin; it != end; ++it) {
    append_tree_node(out, spans, children, it->second, depth + 1);
  }
}

}  // namespace

std::string ascii_span_tree(const std::vector<SpanRecord>& spans) {
  // Sort indices by seq so siblings print in begin order regardless of the
  // snapshot's (tid, seq) ordering.
  std::vector<std::size_t> order(spans.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return spans[a].seq < spans[b].seq;
  });

  std::unordered_map<std::uint64_t, std::size_t> by_seq;
  by_seq.reserve(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    by_seq.emplace(spans[i].seq, i);
  }
  std::multimap<std::uint64_t, std::size_t> children;  // parent_seq -> index
  std::vector<std::size_t> roots;
  for (const std::size_t i : order) {
    const SpanRecord& span = spans[i];
    if (span.parent_seq != 0 && by_seq.count(span.parent_seq) != 0) {
      children.emplace(span.parent_seq, i);
    } else {
      roots.push_back(i);
    }
  }
  std::string out;
  for (const std::size_t root : roots) {
    append_tree_node(out, spans, children, root, 0);
  }
  return out;
}

std::string ascii_span_tree(const Observer& observer) {
  return ascii_span_tree(observer.trace().snapshot());
}

std::string TraceValidation::to_string() const {
  std::string out = ok ? "trace OK" : "trace INVALID";
  out += " (" + std::to_string(events) + " events, " +
         std::to_string(begin_events) + " B, " +
         std::to_string(end_events) + " E)";
  for (const std::string& error : errors) {
    out += "\n  " + error;
  }
  return out;
}

TraceValidation validate_chrome_trace(std::string_view trace_json) {
  TraceValidation validation;
  Json document;
  try {
    document = Json::parse(trace_json);
  } catch (const std::exception& e) {
    validation.errors.push_back(std::string("not valid JSON: ") + e.what());
    return validation;
  }
  const Json* events = document.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    validation.errors.push_back("missing traceEvents array");
    return validation;
  }

  struct OpenEvent {
    std::string name;
    double ts = 0.0;
  };
  std::map<std::pair<double, double>, std::vector<OpenEvent>> open;  // (pid,tid)

  std::size_t index = 0;
  for (const Json& event : events->as_array()) {
    const std::string where = "event #" + std::to_string(index++);
    if (!event.is_object()) {
      validation.errors.push_back(where + ": not an object");
      continue;
    }
    const Json* name = event.find("name");
    const Json* ph = event.find("ph");
    const Json* ts = event.find("ts");
    const Json* pid = event.find("pid");
    const Json* tid = event.find("tid");
    if (name == nullptr || !name->is_string() || ph == nullptr ||
        !ph->is_string() || ts == nullptr || !ts->is_number() ||
        pid == nullptr || !pid->is_number() || tid == nullptr ||
        !tid->is_number()) {
      validation.errors.push_back(where +
                                  ": missing name/ph/ts/pid/tid field");
      continue;
    }
    ++validation.events;
    const auto key = std::make_pair(pid->as_number(), tid->as_number());
    const std::string& phase = ph->as_string();
    if (phase == "B") {
      ++validation.begin_events;
      open[key].push_back(OpenEvent{name->as_string(), ts->as_number()});
    } else if (phase == "E") {
      ++validation.end_events;
      auto& stack = open[key];
      if (stack.empty()) {
        validation.errors.push_back(where + ": E \"" + name->as_string() +
                                    "\" with no open B on its thread");
        continue;
      }
      const OpenEvent begin = stack.back();
      stack.pop_back();
      if (begin.name != name->as_string()) {
        validation.errors.push_back(where + ": E \"" + name->as_string() +
                                    "\" closes B \"" + begin.name + "\"");
      }
      if (ts->as_number() < begin.ts) {
        validation.errors.push_back(where + ": negative duration for \"" +
                                    name->as_string() + "\"");
      }
    } else {
      validation.errors.push_back(where + ": unexpected ph \"" + phase +
                                  "\"");
    }
  }
  for (const auto& [key, stack] : open) {
    for (const OpenEvent& event : stack) {
      validation.errors.push_back("unclosed B \"" + event.name +
                                  "\" on tid " +
                                  std::to_string(key.second));
    }
  }
  validation.ok = validation.errors.empty();
  return validation;
}

}  // namespace qmap::obs
