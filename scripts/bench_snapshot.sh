#!/usr/bin/env bash
# Bench snapshot: run the headline benchmark binaries and write one
# BENCH_<name>.json per bench at the repo root in a stable schema, so
# successive PRs can diff performance claims instead of re-deriving them
# from logs.
#
# Schema (keys stable by contract; values change run to run):
#   {
#     "bench":      "<name>",
#     "schema":     "qmap-bench-snapshot/v1",
#     "benchmarks": [{"name": ..., "label": ..., "real_time_ms": ...,
#                     "cpu_time_ms": ..., "iterations": ...}, ...],
#     "derived":    {<bench-specific ratios>}
#   }
#
# Usage: scripts/bench_snapshot.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
BENCHES="bench_router_comparison bench_pipeline bench_service bench_streaming"

cmake --build "${BUILD}" -j "$(nproc)" --target ${BENCHES}

for bench in ${BENCHES}; do
  name="${bench#bench_}"
  raw="${BUILD}/${bench}.raw.json"
  out="BENCH_${name}.json"
  # The router bench carries the perf-regression gate, so it runs with 3
  # repetitions and the snapshot stores the per-benchmark *median* —
  # single-shot numbers are too noisy to diff across PRs.
  reps=1
  if [ "${name}" = "router_comparison" ]; then reps=3; fi
  # The binaries print their paper-figure prose to stdout, so take the
  # JSON via --benchmark_out instead of mixing both streams.
  "./${BUILD}/bench/${bench}" \
    --benchmark_out="${raw}" --benchmark_out_format=json \
    --benchmark_repetitions="${reps}" >/dev/null
  python3 - "${raw}" "${out}" "${name}" <<'PY'
import json, os, statistics, sys

raw_path, out_path, name = sys.argv[1], sys.argv[2], sys.argv[3]
with open(raw_path) as f:
    raw = json.load(f)

def to_ms(value, unit):
    scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[unit]
    return value * scale

STANDARD_KEYS = {
    "name", "label", "real_time", "cpu_time", "time_unit", "iterations",
    "run_name", "run_type", "repetitions", "repetition_index", "threads",
    "family_index", "per_family_instance_index", "aggregate_name",
}

# Group repetitions by benchmark name; each snapshot entry is the median
# over its repetitions (a single run is its own median), so the schema is
# one entry per benchmark regardless of the repetition count.
grouped = {}
order = []
for bench in raw.get("benchmarks", []):
    if bench.get("run_type") == "aggregate":
        continue
    if bench["name"] not in grouped:
        grouped[bench["name"]] = []
        order.append(bench["name"])
    grouped[bench["name"]].append(bench)

benchmarks = []
for bench_name in order:
    reps = grouped[bench_name]
    first = reps[0]
    entry = {
        "name": bench_name,
        "label": first.get("label", ""),
        "real_time_ms": round(statistics.median(
            to_ms(r["real_time"], r["time_unit"]) for r in reps), 6),
        "cpu_time_ms": round(statistics.median(
            to_ms(r["cpu_time"], r["time_unit"]) for r in reps), 6),
        "iterations": first["iterations"],
    }
    # User counters (quality metrics like added_cx/depth) appear as extra
    # numeric keys in the raw JSON; carry them into the snapshot. They are
    # deterministic per benchmark, so the first repetition's values stand.
    counters = {k: v for k, v in first.items()
                if k not in STANDARD_KEYS and isinstance(v, (int, float))}
    if counters:
        entry["counters"] = counters
    benchmarks.append(entry)

by_name = {bench["name"]: bench for bench in benchmarks}
derived = {}
if name == "router_comparison":
    # BM_Router/<router>/<workload>: diff each router's quality counters
    # against sabre per workload. Negative added_cx delta = fewer inserted
    # CXs than sabre (the BRIDGE router's reason to exist).
    routers = ["naive", "sabre", "bridge", "astar", "qmap"]
    workloads = {"0": "random10", "1": "fig1_qx5", "2": "qft8_qx5"}
    for arg, workload in workloads.items():
        sabre = by_name.get(f"BM_Router/1/{arg}", {}).get("counters")
        if not sabre:
            continue
        for idx, router in enumerate(routers):
            if router == "sabre":
                continue
            counters = by_name.get(f"BM_Router/{idx}/{arg}", {}).get("counters")
            if not counters:
                continue
            derived[f"{router}_vs_sabre_added_cx_delta_{workload}"] = \
                counters.get("added_cx", 0) - sabre.get("added_cx", 0)
            derived[f"{router}_vs_sabre_depth_delta_{workload}"] = \
                counters.get("depth", 0) - sabre.get("depth", 0)
    # RouteIR conversion overhead: BM_RouteIRConvert/<workload> measures the
    # Circuit -> RouteIR (SoA + CSR + front layer) build alone; it must stay
    # a small fraction of the matching sabre route time or the conversion at
    # the pass boundary is eating the inner-loop win.
    for arg, workload in workloads.items():
        convert = by_name.get(f"BM_RouteIRConvert/{arg}")
        route = by_name.get(f"BM_Router/1/{arg}")
        if convert and route and route["real_time_ms"] > 0:
            derived[f"route_ir_convert_pct_of_sabre_route_{workload}"] = round(
                100.0 * convert["real_time_ms"] / route["real_time_ms"], 3)
    # Route-time trajectory: ratio of the previous committed snapshot's
    # median to this run's median (> 1 means this run is faster). The
    # regression gate below consumes the same numbers.
    if os.path.exists(out_path):
        with open(out_path) as f:
            previous = {b["name"]: b
                        for b in json.load(f).get("benchmarks", [])}
        for arg, workload in workloads.items():
            for idx, router in enumerate(routers):
                bench_name = f"BM_Router/{idx}/{arg}"
                new = by_name.get(bench_name)
                old = previous.get(bench_name)
                if new and old and new["real_time_ms"] > 0:
                    derived[f"route_time_speedup_vs_previous_{router}_{workload}"] = \
                        round(old["real_time_ms"] / new["real_time_ms"], 2)
if name == "service":
    cold = by_name.get("BM_ServiceColdCompile")
    warm = by_name.get("BM_ServiceWarmHit")
    if cold and warm and warm["real_time_ms"] > 0:
        derived["warm_cold_ratio"] = round(
            cold["real_time_ms"] / warm["real_time_ms"], 1)
    # Overload-control economics: the admission verdict runs on every
    # submit, so its cost relative to a cold compile is the number that
    # says shedding is free; drain_ms is the SIGTERM-to-exit budget a
    # supervisor should allow with compiles in flight.
    shed = by_name.get("BM_ServiceShedDecision")
    if cold and shed and cold["real_time_ms"] > 0:
        derived["shed_decision_pct_of_cold"] = round(
            100.0 * shed["real_time_ms"] / cold["real_time_ms"], 6)
    # BM_ServiceDrain pins its iteration count, which google-benchmark
    # appends to the name ("BM_ServiceDrain/iterations:3").
    drain = next((b for b in benchmarks
                  if b["name"].startswith("BM_ServiceDrain")), None)
    if drain:
        derived["drain_ms"] = round(drain["real_time_ms"], 3)
if name == "streaming":
    # Out-of-core claim: compiling 1M gates through the windowed pipeline
    # must not cost more resident memory than 10k gates at the same
    # window. ru_maxrss is monotonic and the sizes run ascending, so the
    # ratio of the recorded high-water marks is exactly the growth the
    # window failed to bound.
    def stream_entry(size):
        return next((b for b in benchmarks
                     if b["name"].startswith(f"BM_StreamCompile/{size}/")
                     or b["name"] == f"BM_StreamCompile/{size}"), None)
    small = stream_entry(10000)
    big = stream_entry(1000000)
    if small and big:
        small_rss = small.get("counters", {}).get("peak_rss_mb", 0)
        big_rss = big.get("counters", {}).get("peak_rss_mb", 0)
        if small_rss > 0:
            derived["peak_rss_ratio_1m_vs_10k"] = round(
                big_rss / small_rss, 3)
        derived["peak_rss_mb_10k"] = round(small_rss, 2)
        derived["peak_rss_mb_1m"] = round(big_rss, 2)
        derived["gates_per_sec_1m"] = round(
            big.get("counters", {}).get("gates_per_sec", 0), 1)
        derived["window_peak_gates_1m"] = \
            big.get("counters", {}).get("window_peak_gates", 0)

snapshot = {
    "bench": name,
    "schema": "qmap-bench-snapshot/v1",
    "benchmarks": benchmarks,
    "derived": derived,
}

# Perf-regression gate (router_comparison only): any route-time median more
# than 10% slower than the previous committed snapshot rejects the run —
# the new numbers land in BENCH_*.json.rejected for inspection, the
# committed baseline stays untouched, and the script exits nonzero.
# QMAP_BENCH_ALLOW_REGRESSION=1 accepts an intentional slowdown.
regressions = []
if name == "router_comparison" and os.path.exists(out_path) \
        and not os.environ.get("QMAP_BENCH_ALLOW_REGRESSION"):
    with open(out_path) as f:
        previous = {b["name"]: b for b in json.load(f).get("benchmarks", [])}
    for bench in benchmarks:
        if not bench["name"].startswith("BM_Router"):
            continue
        old = previous.get(bench["name"])
        if not old or old.get("real_time_ms", 0) <= 0:
            continue
        ratio = bench["real_time_ms"] / old["real_time_ms"]
        if ratio > 1.10:
            regressions.append(
                f"{bench['name']} ({bench.get('label', '')}): "
                f"{old['real_time_ms']}ms -> {bench['real_time_ms']}ms "
                f"({100.0 * (ratio - 1.0):.1f}% slower)")
if regressions:
    with open(out_path + ".rejected", "w") as f:
        json.dump(snapshot, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"bench_snapshot: route-time regression >10% vs committed {out_path}"
          f" — new numbers in {out_path}.rejected, baseline kept")
    for line in regressions:
        print(f"bench_snapshot:   {line}")
    sys.exit("bench_snapshot: perf-regression gate failed "
             "(QMAP_BENCH_ALLOW_REGRESSION=1 overrides)")

with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"bench_snapshot: wrote {out_path} ({len(benchmarks)} benchmarks)")
PY
done

# The service snapshot carries the PR's headline claim: fail the snapshot
# run outright if the warm/cold ratio regressed below the 100x gate.
python3 - <<'PY'
import json, sys
with open("BENCH_service.json") as f:
    snapshot = json.load(f)
ratio = snapshot.get("derived", {}).get("warm_cold_ratio", 0)
if ratio < 100:
    sys.exit(f"bench_snapshot: warm/cold ratio {ratio} below the 100x gate")
print(f"bench_snapshot: service warm/cold ratio {ratio}x (gate: >= 100x)")
shed_pct = snapshot.get("derived", {}).get("shed_decision_pct_of_cold")
if shed_pct is None:
    sys.exit("bench_snapshot: no shed-decision latency recorded")
if shed_pct >= 1.0:
    sys.exit(f"bench_snapshot: shed decision costs {shed_pct}% of a cold "
             "compile (gate: < 1%)")
print(f"bench_snapshot: shed decision {shed_pct}% of a cold compile "
      "(gate: < 1%)")
drain_ms = snapshot.get("derived", {}).get("drain_ms")
if drain_ms is None:
    sys.exit("bench_snapshot: no drain latency recorded")
print(f"bench_snapshot: graceful drain {drain_ms}ms with compiles in flight")
PY

# The BRIDGE router's headline claim: it must insert fewer CXs than sabre
# on at least one device/workload pair in the snapshot.
python3 - <<'PY'
import json, sys
with open("BENCH_router_comparison.json") as f:
    snapshot = json.load(f)
derived = snapshot.get("derived", {})
deltas = {k: v for k, v in derived.items()
          if k.startswith("bridge_vs_sabre_added_cx_delta_")}
if not deltas:
    sys.exit("bench_snapshot: no bridge-vs-sabre added-CX deltas recorded")
if min(deltas.values()) >= 0:
    sys.exit(f"bench_snapshot: bridge never beat sabre on added CX: {deltas}")
for key, value in sorted(deltas.items()):
    print(f"bench_snapshot: {key} = {value:+g}")
PY

# RouteIR economics: converting a Circuit into the SoA/CSR routing IR must
# stay under 5% of the matching sabre route time (else the data-oriented
# rewrite just moved the cost to the pass boundary), and the route-time
# speedups vs the previous snapshot are printed as the PR's trajectory.
# Sub-microsecond conversions pass outright: on toy circuits the whole
# route is a few microseconds, so the ratio pits one ~100ns measurement
# against another and flaps with scheduler noise while the absolute cost
# is trivially unable to eat any win.
python3 - <<'PY'
import json, sys
with open("BENCH_router_comparison.json") as f:
    snapshot = json.load(f)
benchmarks = {b["name"]: b for b in snapshot.get("benchmarks", [])}
derived = snapshot.get("derived", {})
convert = {k: v for k, v in derived.items()
           if k.startswith("route_ir_convert_pct_of_sabre_route_")}
WORKLOAD_ARG = {"random10": "0", "fig1_qx5": "1", "qft8_qx5": "2"}
ABS_FLOOR_MS = 0.0005  # 0.5us
if any(name.startswith("BM_RouteIRConvert") for name in benchmarks):
    if not convert:
        sys.exit("bench_snapshot: BM_RouteIRConvert ran but no conversion "
                 "overhead was derived")
    for key, pct in sorted(convert.items()):
        workload = key.rsplit("route_", 1)[-1]
        arg = WORKLOAD_ARG.get(workload)
        entry = benchmarks.get(f"BM_RouteIRConvert/{arg}") if arg else None
        abs_ms = entry["real_time_ms"] if entry else None
        if abs_ms is not None and abs_ms < ABS_FLOOR_MS:
            print(f"bench_snapshot: {key} = {pct}% "
                  f"({abs_ms * 1e3:.3f}us absolute, below the "
                  f"{ABS_FLOOR_MS * 1e3}us floor — gate passes)")
            continue
        if pct >= 5.0:
            sys.exit(f"bench_snapshot: {key} = {pct}% (gate: < 5%)")
        print(f"bench_snapshot: {key} = {pct}% (gate: < 5%)")
else:
    print("bench_snapshot: no BM_RouteIRConvert entries; conversion gate "
          "skipped")
for key, value in sorted(derived.items()):
    if key.startswith("route_time_speedup_vs_previous_"):
        print(f"bench_snapshot: {key} = {value}x")
PY

# Streaming out-of-core gate: compiling a million gates through the
# windowed pipeline must keep peak RSS within 2x of the 10k-gate run at
# the same window — the claim the streaming mode exists to make.
# QMAP_BENCH_ALLOW_REGRESSION=1 accepts an intentional change.
python3 - <<'PY'
import json, os, sys
with open("BENCH_streaming.json") as f:
    snapshot = json.load(f)
derived = snapshot.get("derived", {})
ratio = derived.get("peak_rss_ratio_1m_vs_10k")
if ratio is None:
    sys.exit("bench_snapshot: no streaming peak-RSS ratio recorded")
throughput = derived.get("gates_per_sec_1m", 0)
print(f"bench_snapshot: streaming 1M-gate compile at {throughput:,.0f} "
      f"gates/sec, peak RSS {derived.get('peak_rss_mb_1m')}MB (1M) vs "
      f"{derived.get('peak_rss_mb_10k')}MB (10k), ratio {ratio} "
      "(gate: <= 2.0)")
if ratio > 2.0 and not os.environ.get("QMAP_BENCH_ALLOW_REGRESSION"):
    sys.exit(f"bench_snapshot: streaming peak-RSS ratio {ratio} exceeds "
             "the 2x out-of-core gate (QMAP_BENCH_ALLOW_REGRESSION=1 "
             "overrides)")
PY
