#!/usr/bin/env bash
# Tier-1 verification: the standard build + full test suite, then the
# parallel engine's tests again under ThreadSanitizer so data races in
# src/engine/ (or anything it drives concurrently) fail the build.
#
# Usage: scripts/tier1.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "== tier 1: build + ctest =="
cmake -B build -S .
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

echo "== tier 1: differential fuzz label =="
# The fuzz-labelled tests carry their own per-test timeouts
# (tests/CMakeLists.txt); run them serially so a timeout is attributable.
(cd build && ctest --output-on-failure -L fuzz)

echo "== tier 1: resilience label =="
# The fault-injection matrix (tests/test_resilience.cpp) runs as its own
# leg with a ctest timeout: a fallback ladder that stops terminating hangs
# here, attributably, instead of inside the main suite.
(cd build && ctest --output-on-failure -L resilience)

echo "== tier 1: observability label =="
# The obs determinism/golden suite (tests/test_obs.cpp) as its own leg so
# a metrics fingerprint drift or golden-trace mismatch is attributable.
(cd build && ctest --output-on-failure -L obs)

echo "== tier 1: pass-pipeline label =="
# The pass suite (tests/test_pass.cpp) pins facade-vs-PassManager byte
# parity and ArchArtifacts equivalence; a drift here means Compiler no
# longer compiles what its declared pipeline says it does.
(cd build && ctest --output-on-failure -L pass)

echo "== tier 1: compile-service label =="
# The service suite (tests/test_service.cpp) pins the cache semantics the
# daemon's answers depend on: single-flight dedup, LRU/TTL behaviour,
# canonical cache keys, and hit-replays-cold fingerprint identity across
# 1/2/8 dispatcher threads.
(cd build && ctest --output-on-failure -L service)

echo "== tier 1: chaos label =="
# The chaos-hardening suite (tests/test_chaos.cpp): the seeded
# ChaosTransport matrix (mixed-validity traffic x wire faults x 1/2/8
# dispatcher threads, fingerprints pinned against fault-free runs),
# overload shedding, brownout, circuit breakers, and graceful drain.
(cd build && ctest --output-on-failure -L chaos)

echo "== tier 1: qmap_serve drain (process level) =="
# SIGTERM a live daemon mid-stream: exit 0, drain reported, every accepted
# request answered.
scripts/chaos_drain_test.sh build

echo "== tier 1: bridge router + token-swap finisher leg =="
# The BRIDGE router and the token-swapping permutation finisher as their
# own leg: the 4-CX template property tests, the token-swap phase tests,
# and the finisher's end-to-end placement-restoration contract.
(cd build && ctest --output-on-failure -R 'Bridge|TokenSwap')

echo "== tier 1: route_ir label =="
# The data-oriented routing core suite (tests/test_route_ir.cpp): the
# byte-parity matrix pinning every RouteIR-backed router against golden
# pre-refactor fingerprints across devices and seeds, CSR structural
# properties vs DependencyDag, arena rewind semantics, and the
# 1/2/8-thread fingerprint pin.
(cd build && ctest --output-on-failure -L route_ir)

echo "== tier 1: stream label =="
# The streaming compilation suite (tests/test_stream.cpp): incremental
# QASM parsing, streamed-vs-materialized route byte parity across the
# chunk-size matrix, the run_stream golden-fingerprint pin, fallback
# semantics for non-streamable pipeline shapes, and the allocation audit
# of the token-swap finisher splice.
(cd build && ctest --output-on-failure -L stream)

echo "== tier 1: pass registry lint =="
# Every registered pass name must be documented in DESIGN.md's pass table.
scripts/check_pass_registry.sh

echo "== tier 1: service metrics lint =="
# Every service.* metric recorded in src/service/ must be documented in
# DESIGN.md's §10 metrics table.
scripts/check_service_metrics.sh

echo "== tier 1: test_engine + test_verify + test_resilience + test_obs + test_pass + test_service + test_chaos under ThreadSanitizer =="
cmake -B build-tsan -S . -DQMAP_SANITIZE=thread
cmake --build build-tsan -j "${JOBS}" --target test_engine test_verify test_resilience test_obs test_pass test_service test_chaos
# TSAN_OPTIONS makes the run fail loudly on the first race report.
# test_verify's fuzzer tests fan compiles across the engine ThreadPool, so
# they double as a race check of the whole compile pipeline;
# test_resilience adds the fault injector's concurrent fired-fault
# recording and the supervisor/portfolio interplay; test_obs hammers the
# sharded trace buffer and metrics registry from concurrent strategies.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_engine
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_verify
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_resilience
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_obs
# test_pass adds the shared-ArchArtifacts concurrent reads and the lazy
# CouplingGraph distance-cache first-use race.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_pass
# The bridge/token-swap property tests re-run under TSan: BridgeRouter
# reads the shared ArchArtifacts distance tables from portfolio threads.
cmake --build build-tsan -j "${JOBS}" --target test_route
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_route \
    --gtest_filter='BridgeRouter.*:TokenSwap.*:RoutingEmitter.Bridge*:RouterProperty*'
# test_service hammers the sharded result cache (single-flight leaders,
# blocking followers, LRU under byte pressure), the round-robin dispatch
# queues, and disconnect-driven cancellation from concurrent clients.
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_service
# test_chaos re-runs the full wire-fault matrix and the overload/breaker/
# drain machinery under TSan: brownout hysteresis under the queue lock,
# breaker transitions from dispatcher threads, and drain racing serve().
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_chaos
# The RouteIR thread tests re-run under TSan: per-route thread_local
# arena reuse across portfolio-style worker threads, all routers sharing
# one warmed distance cache — a race here would corrupt routing state
# silently (the fingerprint pin only catches it after the fact).
cmake --build build-tsan -j "${JOBS}" --target test_route_ir
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_route_ir \
    --gtest_filter='RouteIrThreads.*'
# The streaming thread tests re-run under TSan: the bounded PipeStream
# hand-off between a producer thread and the routing thread (chunked
# reader -> router), and the 1/2/8-thread streamed-route digest pin.
cmake --build build-tsan -j "${JOBS}" --target test_stream
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_stream \
    --gtest_filter='StreamThreads.*'

echo "== tier 1: test_route_ir under ASan+UBSan =="
# The arena hands out raw pointers with manual lifetime (marker rewind,
# block reuse); ASan+UBSan over the full RouteIR suite — parity matrix
# included — catches out-of-bounds SoA/CSR indexing, use-after-rewind,
# and misaligned loads that plain tests cannot see.
cmake -B build-asan -S . -DQMAP_SANITIZE=address
cmake --build build-asan -j "${JOBS}" --target test_route_ir
ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
    ./build-asan/tests/test_route_ir

echo "tier 1 OK"
