file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_latency.dir/bench_sec5_latency.cpp.o"
  "CMakeFiles/bench_sec5_latency.dir/bench_sec5_latency.cpp.o.d"
  "bench_sec5_latency"
  "bench_sec5_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
