file(REMOVE_RECURSE
  "CMakeFiles/qmap_sim.dir/sim/equivalence.cpp.o"
  "CMakeFiles/qmap_sim.dir/sim/equivalence.cpp.o.d"
  "CMakeFiles/qmap_sim.dir/sim/stabilizer.cpp.o"
  "CMakeFiles/qmap_sim.dir/sim/stabilizer.cpp.o.d"
  "CMakeFiles/qmap_sim.dir/sim/statevector.cpp.o"
  "CMakeFiles/qmap_sim.dir/sim/statevector.cpp.o.d"
  "libqmap_sim.a"
  "libqmap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qmap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
