#include "schedule/schedulers.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "ir/dag.hpp"

namespace qmap {

Schedule schedule_asap(const Circuit& circuit, const Device& device) {
  Schedule schedule(circuit.num_qubits());
  std::vector<int> available(static_cast<std::size_t>(circuit.num_qubits()),
                             0);
  for (const Gate& gate : circuit) {
    const int duration = device.cycles_for(gate);
    int start = 0;
    for (const int q : gate.qubits) {
      start = std::max(start, available[static_cast<std::size_t>(q)]);
    }
    for (const int q : gate.qubits) {
      available[static_cast<std::size_t>(q)] = start + duration;
    }
    schedule.add(ScheduledGate{gate, start, duration});
  }
  return schedule;
}

Schedule schedule_alap(const Circuit& circuit, const Device& device) {
  // ALAP = mirrored ASAP of the reversed gate list.
  std::vector<int> deadline(static_cast<std::size_t>(circuit.num_qubits()),
                            0);
  std::vector<ScheduledGate> reversed;
  reversed.reserve(circuit.size());
  for (auto it = circuit.gates().rbegin(); it != circuit.gates().rend();
       ++it) {
    const Gate& gate = *it;
    const int duration = device.cycles_for(gate);
    int start = 0;
    for (const int q : gate.qubits) {
      start = std::max(start, deadline[static_cast<std::size_t>(q)]);
    }
    for (const int q : gate.qubits) {
      deadline[static_cast<std::size_t>(q)] = start + duration;
    }
    reversed.push_back(ScheduledGate{gate, start, duration});
  }
  int total = 0;
  for (const ScheduledGate& op : reversed) {
    total = std::max(total, op.end_cycle());
  }
  Schedule schedule(circuit.num_qubits());
  for (auto it = reversed.rbegin(); it != reversed.rend(); ++it) {
    ScheduledGate op = *it;
    op.start_cycle = total - op.end_cycle();
    schedule.add(std::move(op));
  }
  return schedule;
}

Schedule schedule_constrained(
    const Circuit& circuit, const Device& device,
    const std::vector<std::unique_ptr<ResourceConstraint>>& constraints,
    obs::Observer* obs) {
  DependencyDag dag(circuit);
  const std::size_t num_nodes = dag.num_nodes();
  Schedule schedule(circuit.num_qubits());

  // Priority: downstream critical path (including own duration).
  std::vector<double> priority(num_nodes, 0.0);
  for (std::size_t i = num_nodes; i-- > 0;) {
    double downstream = 0.0;
    for (const int succ : dag.successors(static_cast<int>(i))) {
      downstream = std::max(downstream, priority[static_cast<std::size_t>(succ)]);
    }
    priority[i] = downstream + device.cycles_for(circuit.gate(i));
  }

  std::vector<int> end_cycle(num_nodes, 0);
  std::vector<int> qubit_busy(static_cast<std::size_t>(circuit.num_qubits()),
                              0);
  std::vector<ScheduledGate> admitted;  // for constraint overlap checks

  int cycle = 0;
  std::size_t scheduled = 0;
  std::uint64_t cycle_advances = 0;
  std::uint64_t constraint_deferrals = 0;
  while (scheduled < num_nodes) {
    // Ready nodes, highest priority first (stable on node index).
    std::vector<int> ready = dag.ready();
    std::stable_sort(ready.begin(), ready.end(), [&](int a, int b) {
      return priority[static_cast<std::size_t>(a)] >
             priority[static_cast<std::size_t>(b)];
    });
    bool progressed = false;
    for (const int node : ready) {
      const Gate& gate = circuit.gate(static_cast<std::size_t>(node));
      const int duration = device.cycles_for(gate);
      // Dependencies must have finished and operands must be idle.
      bool startable = true;
      for (const int pred : dag.predecessors(node)) {
        if (end_cycle[static_cast<std::size_t>(pred)] > cycle) {
          startable = false;
          break;
        }
      }
      if (startable) {
        for (const int q : gate.qubits) {
          if (qubit_busy[static_cast<std::size_t>(q)] > cycle) {
            startable = false;
            break;
          }
        }
      }
      if (!startable) continue;
      const ScheduledGate candidate{gate, cycle, duration};
      bool allowed = true;
      for (const auto& constraint : constraints) {
        if (!constraint->compatible(candidate, admitted, device)) {
          allowed = false;
          break;
        }
      }
      if (!allowed) {
        ++constraint_deferrals;
        continue;
      }
      // Admit.
      admitted.push_back(candidate);
      schedule.add(candidate);
      end_cycle[static_cast<std::size_t>(node)] = cycle + duration;
      for (const int q : gate.qubits) {
        qubit_busy[static_cast<std::size_t>(q)] =
            std::max(qubit_busy[static_cast<std::size_t>(q)],
                     cycle + duration);
      }
      dag.mark_scheduled(node);
      ++scheduled;
      progressed = true;
    }
    if (scheduled == num_nodes) break;
    // Advance: next cycle at which anything can change.
    int next = cycle + 1;
    if (!progressed) {
      int earliest_event = std::numeric_limits<int>::max();
      for (const int busy : qubit_busy) {
        if (busy > cycle) earliest_event = std::min(earliest_event, busy);
      }
      if (earliest_event != std::numeric_limits<int>::max()) {
        next = std::max(next, earliest_event);
      }
    }
    cycle = next;
    ++cycle_advances;
  }
  obs::add(obs, "schedule.constrained_runs");
  obs::add(obs, "schedule.cycle_advances", cycle_advances);
  obs::add(obs, "schedule.constraint_deferrals", constraint_deferrals);
  obs::observe(obs, "schedule.depth",
               static_cast<double>(schedule.total_cycles()));
  return schedule;
}

Schedule schedule_for_device(const Circuit& circuit, const Device& device,
                             obs::Observer* obs) {
  if (!device.has_control_constraints()) {
    obs::add(obs, "schedule.asap_runs");
    Schedule schedule = schedule_asap(circuit, device);
    obs::observe(obs, "schedule.depth",
                 static_cast<double>(schedule.total_cycles()));
    return schedule;
  }
  return schedule_constrained(circuit, device, constraints_for_device(device),
                              obs);
}

}  // namespace qmap
