#include "arch/config.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace qmap {

namespace {

const char* json_type_name(const Json& value) {
  switch (value.type()) {
    case Json::Type::Null: return "null";
    case Json::Type::Bool: return "a boolean";
    case Json::Type::Number: return "a number";
    case Json::Type::String: return "a string";
    case Json::Type::Array: return "an array";
    case Json::Type::Object: return "an object";
  }
  return "an unknown value";
}

[[noreturn]] void config_error(const std::string& key_path,
                               const std::string& what) {
  throw DeviceError("device config: '" + key_path + "': " + what);
}

}  // namespace

// Required fields (num_qubits, edge structure) throw DeviceError naming the
// offending key path. Optional fields (name, native gates, durations,
// control constraints, noise, coordinates) never fail the load: a malformed
// value falls back to its documented default and the problem is recorded on
// Device::load_warnings() so callers can surface it.
Device device_from_json(const Json& config) {
  if (!config.is_object()) {
    throw DeviceError(std::string("device config: expected a JSON object "
                                  "at the top level, got ") +
                      json_type_name(config));
  }
  const Json* nq = config.find("num_qubits");
  if (nq == nullptr) {
    throw DeviceError("device config: missing required key 'num_qubits'");
  }
  if (!nq->is_number()) {
    config_error("num_qubits",
                 std::string("expected a number, got ") + json_type_name(*nq));
  }
  const int n = nq->as_int();
  if (n <= 0) {
    config_error("num_qubits",
                 "must be at least 1, got " + std::to_string(n));
  }

  CouplingGraph coupling(n);
  const auto read_edges = [&](const char* key, bool directed) {
    const Json* edges = config.find(key);
    if (edges == nullptr) return;
    if (!edges->is_array()) {
      config_error(key, std::string("expected an array of [a, b] qubit "
                                    "pairs, got ") +
                            json_type_name(*edges));
    }
    for (std::size_t i = 0; i < edges->size(); ++i) {
      const std::string path = std::string(key) + "[" + std::to_string(i) +
                               "]";
      const Json& edge = edges->at(i);
      if (!edge.is_array() || edge.size() != 2 || !edge.at(0).is_number() ||
          !edge.at(1).is_number()) {
        config_error(path, "expected an [a, b] qubit pair");
      }
      try {
        coupling.add_edge(edge.at(0).as_int(), edge.at(1).as_int(), directed);
      } catch (const Error& e) {
        config_error(path, e.what());
      }
    }
  };
  read_edges("edges", /*directed=*/false);
  read_edges("directed_edges", /*directed=*/true);

  std::vector<std::string> warnings;
  const auto warn = [&warnings](const std::string& key_path,
                                const std::string& why,
                                const std::string& fallback) {
    warnings.push_back("'" + key_path + "': " + why + "; " + fallback);
  };

  std::string name = "device";
  if (const Json* j = config.find("name")) {
    if (j->is_string()) {
      name = j->as_string();
    } else {
      warn("name", std::string("expected a string, got ") + json_type_name(*j),
           "using default name 'device'");
    }
  }
  Device device(name, std::move(coupling));

  if (const Json* j = config.find("native_two_qubit")) {
    if (!j->is_string()) {
      warn("native_two_qubit",
           std::string("expected a gate name string, got ") +
               json_type_name(*j),
           "keeping default 'cz'");
    } else {
      try {
        device.set_native_two_qubit(gate_kind_from_name(j->as_string()));
      } catch (const Error& e) {
        warn("native_two_qubit", e.what(), "keeping default 'cz'");
      }
    }
  }
  if (const Json* j = config.find("native_single_qubit")) {
    if (!j->is_array()) {
      warn("native_single_qubit",
           std::string("expected an array of gate names, got ") +
               json_type_name(*j),
           "keeping default (unrestricted)");
    } else {
      std::vector<GateKind> kinds;
      bool all_ok = true;
      for (std::size_t i = 0; i < j->size(); ++i) {
        const std::string path =
            "native_single_qubit[" + std::to_string(i) + "]";
        const Json& k = j->at(i);
        if (!k.is_string()) {
          warn(path, std::string("expected a gate name string, got ") +
                         json_type_name(k),
               "ignoring entry");
          all_ok = false;
          continue;
        }
        try {
          kinds.push_back(gate_kind_from_name(k.as_string()));
        } catch (const Error& e) {
          warn(path, e.what(), "ignoring entry");
          all_ok = false;
        }
      }
      // An all-bad list would silently mean "unrestricted", the opposite of
      // what the config asked for — only apply what parsed.
      if (all_ok || !kinds.empty()) {
        device.set_native_single_qubit(std::move(kinds));
      }
    }
  }
  if (const Json* j = config.find("durations")) {
    Durations d;  // documented defaults from arch/device.hpp
    if (!j->is_object()) {
      warn("durations", std::string("expected an object, got ") +
                            json_type_name(*j),
           "using default durations");
    } else {
      const auto read_cycles = [&](const char* key, int& out) {
        const Json* v = j->find(key);
        if (v == nullptr) return;
        if (!v->is_number() || v->as_int() < 0) {
          warn(std::string("durations.") + key,
               "expected a non-negative cycle count",
               "using default " + std::to_string(out));
          return;
        }
        out = v->as_int();
      };
      if (const Json* v = j->find("cycle_ns")) {
        if (v->is_number() && v->as_number() > 0) {
          d.cycle_ns = v->as_number();
        } else {
          warn("durations.cycle_ns", "expected a positive number",
               "using default 20 ns");
        }
      }
      read_cycles("single_qubit", d.single_qubit_cycles);
      read_cycles("two_qubit", d.two_qubit_cycles);
      read_cycles("measure", d.measure_cycles);
      read_cycles("move", d.move_cycles);
    }
    device.set_durations(d);
  }
  if (const Json* j = config.find("supports_shuttling")) {
    if (j->is_bool()) {
      device.set_supports_shuttling(j->as_bool());
    } else {
      warn("supports_shuttling", std::string("expected a boolean, got ") +
                                     json_type_name(*j),
           "assuming no shuttling");
    }
  }
  if (const Json* j = config.find("max_parallel_two_qubit")) {
    if (!j->is_number()) {
      warn("max_parallel_two_qubit",
           std::string("expected a number, got ") + json_type_name(*j),
           "assuming unlimited");
    } else {
      try {
        device.set_max_parallel_two_qubit(j->as_int());
      } catch (const Error& e) {
        warn("max_parallel_two_qubit", e.what(), "assuming unlimited");
      }
    }
  }
  if (const Json* j = config.find("measurable")) {
    bool ok = j->is_array() && j->size() == static_cast<std::size_t>(n);
    if (ok) {
      for (std::size_t i = 0; i < j->size(); ++i) {
        ok = ok && j->at(i).is_bool();
      }
    }
    if (!ok) {
      warn("measurable",
           "expected an array of " + std::to_string(n) + " booleans",
           "assuming every qubit is measurable");
    } else {
      std::vector<bool> mask;
      for (const Json& v : j->as_array()) mask.push_back(v.as_bool());
      device.set_measurable(std::move(mask));
    }
  }
  const auto read_constraint_groups = [&](const char* key,
                                          const char* fallback,
                                          auto&& setter) {
    const Json* j = config.find(key);
    if (j == nullptr) return;
    bool ok = j->is_array() && j->size() == static_cast<std::size_t>(n);
    if (ok) {
      for (std::size_t i = 0; i < j->size(); ++i) {
        ok = ok && j->at(i).is_number();
      }
    }
    if (!ok) {
      warn(key,
           "expected an array of " + std::to_string(n) + " group indices",
           fallback);
      return;
    }
    std::vector<int> groups;
    for (const Json& v : j->as_array()) groups.push_back(v.as_int());
    try {
      setter(std::move(groups));
    } catch (const Error& e) {
      warn(key, e.what(), fallback);
    }
  };
  read_constraint_groups(
      "frequency_groups", "assuming unconstrained microwave control",
      [&device](std::vector<int> groups) {
        device.set_frequency_groups(std::move(groups));
      });
  read_constraint_groups(
      "feedlines", "assuming dedicated measurement lines",
      [&device](std::vector<int> lines) {
        device.set_feedlines(std::move(lines));
      });
  if (const Json* j = config.find("noise")) {
    try {
      device.set_noise(NoiseModel::from_json(*j));
    } catch (const Error& e) {
      warn("noise", e.what(), "loading device without calibration data");
    }
  }
  if (const Json* j = config.find("coordinates")) {
    std::vector<std::pair<double, double>> coords;
    bool ok = j->is_array() && j->size() == static_cast<std::size_t>(n);
    if (ok) {
      for (std::size_t i = 0; ok && i < j->size(); ++i) {
        const Json& pair = j->at(i);
        ok = pair.is_array() && pair.size() == 2 &&
             pair.at(0).is_number() && pair.at(1).is_number();
        if (ok) {
          coords.emplace_back(pair.at(0).as_number(), pair.at(1).as_number());
        }
      }
    }
    if (!ok) {
      warn("coordinates",
           "expected an array of " + std::to_string(n) +
               " [row, column] pairs",
           "drawing without layout coordinates");
    } else {
      device.set_coordinates(std::move(coords));
    }
  }
  for (std::string& warning : warnings) {
    device.add_load_warning(std::move(warning));
  }
  return device;
}

Device device_from_json_text(const std::string& text) {
  return device_from_json(Json::parse(text));
}

Device load_device(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw DeviceError("cannot open device config: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  try {
    return device_from_json_text(buffer.str());
  } catch (const Error& e) {
    // Prefix the file so a config error in a multi-device load names its
    // source; the inner message already names the key path.
    throw DeviceError(path + ": " + e.what());
  }
}

Json device_to_json(const Device& device) {
  Json out;
  out["name"] = Json(device.name());
  out["num_qubits"] = Json(device.num_qubits());
  JsonArray symmetric;
  JsonArray directed;
  for (const auto& edge : device.coupling().edges()) {
    if (edge.a_to_b && edge.b_to_a) {
      symmetric.push_back(Json(JsonArray{Json(edge.a), Json(edge.b)}));
    } else if (edge.a_to_b) {
      directed.push_back(Json(JsonArray{Json(edge.a), Json(edge.b)}));
    } else {
      directed.push_back(Json(JsonArray{Json(edge.b), Json(edge.a)}));
    }
  }
  if (!symmetric.empty()) out["edges"] = Json(std::move(symmetric));
  if (!directed.empty()) out["directed_edges"] = Json(std::move(directed));
  out["native_two_qubit"] =
      Json(std::string(gate_info(device.native_two_qubit()).name));
  if (!device.native_single_qubit().empty()) {
    JsonArray singles;
    for (const GateKind kind : device.native_single_qubit()) {
      singles.push_back(Json(std::string(gate_info(kind).name)));
    }
    out["native_single_qubit"] = Json(std::move(singles));
  }
  const Durations& d = device.durations();
  Json durations;
  durations["cycle_ns"] = Json(d.cycle_ns);
  durations["single_qubit"] = Json(d.single_qubit_cycles);
  durations["two_qubit"] = Json(d.two_qubit_cycles);
  durations["measure"] = Json(d.measure_cycles);
  durations["move"] = Json(d.move_cycles);
  out["durations"] = std::move(durations);
  if (device.supports_shuttling()) out["supports_shuttling"] = Json(true);
  if (device.max_parallel_two_qubit() > 0) {
    out["max_parallel_two_qubit"] = Json(device.max_parallel_two_qubit());
  }
  if (!device.measurable_mask().empty()) {
    JsonArray mask;
    for (const bool m : device.measurable_mask()) mask.push_back(Json(m));
    out["measurable"] = Json(std::move(mask));
  }
  const auto write_int_vector = [](const std::vector<int>& values) {
    JsonArray array;
    for (const int v : values) array.push_back(Json(v));
    return Json(std::move(array));
  };
  if (!device.frequency_groups().empty()) {
    out["frequency_groups"] = write_int_vector(device.frequency_groups());
  }
  if (!device.feedlines().empty()) {
    out["feedlines"] = write_int_vector(device.feedlines());
  }
  if (device.has_noise()) {
    out["noise"] = device.noise().to_json();
  }
  if (!device.coordinates().empty()) {
    JsonArray coords;
    for (const auto& [r, c] : device.coordinates()) {
      coords.push_back(Json(JsonArray{Json(r), Json(c)}));
    }
    out["coordinates"] = Json(std::move(coords));
  }
  return out;
}

void save_device(const Device& device, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw DeviceError("cannot write device config: " + path);
  out << device_to_json(device).dump(2) << "\n";
}

}  // namespace qmap
