// Coupling graph: which physical-qubit pairs may host a two-qubit gate.
//
// IBM devices (Sec. IV of the paper) publish a *directed* coupling graph —
// an edge Qi -> Qj means a CNOT with control Qi and target Qj is allowed,
// and nothing else. Devices like Surface-17 (Sec. V) are symmetric: a CZ
// may run on any connected pair in either orientation. Both are captured
// here: connectivity is stored undirected, and each undirected edge records
// which orientations are permitted.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace qmap {

class CouplingGraph {
 public:
  CouplingGraph() = default;
  explicit CouplingGraph(int num_qubits);

  // The mutex guarding the lazy distance cache is not copyable, so copies
  // are spelled out: they take the source's lock and carry the cache over,
  // making "copy a warmed Device" keep the warmed matrix.
  CouplingGraph(const CouplingGraph& other);
  CouplingGraph(CouplingGraph&& other) noexcept;
  CouplingGraph& operator=(const CouplingGraph& other);
  CouplingGraph& operator=(CouplingGraph&& other) noexcept;
  ~CouplingGraph() = default;

  [[nodiscard]] int num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }

  /// Adds an edge. `directed == true` permits only the (a -> b) orientation
  /// for directional gates; `false` permits both. Adding both (a,b) and
  /// (b,a) directed edges yields a fully symmetric connection.
  void add_edge(int a, int b, bool directed = false);

  /// True when a two-qubit gate may couple a and b in *some* orientation.
  [[nodiscard]] bool connected(int a, int b) const;

  /// True when a *directional* two-qubit gate with control `control` and
  /// target `target` is allowed as-is (without inserting direction fixes).
  [[nodiscard]] bool orientation_allowed(int control, int target) const;

  [[nodiscard]] const std::vector<int>& neighbors(int q) const;

  /// Undirected edge list, each pair with a < b plus orientation flags.
  struct Edge {
    int a = 0;
    int b = 0;
    bool a_to_b = false;  // orientation a(control) -> b(target) allowed
    bool b_to_a = false;
  };
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept {
    return edges_;
  }

  /// Hop distance over the undirected graph; -1 when disconnected.
  [[nodiscard]] int distance(int a, int b) const;

  /// Fills the lazy all-pairs distance matrix now. The first distance()
  /// call otherwise computes it on demand under a mutex (double-checked
  /// against an atomic flag), so concurrent first calls are safe; warming
  /// the cache up front merely keeps the lock off hot paths. `Device`
  /// construction precomputes eagerly, so device users never pay lazily.
  void precompute_distances() const;

  /// The full all-pairs matrix behind distance(), row per source qubit,
  /// warmed on first use. Routers without attached ArchArtifacts flatten
  /// this once per route instead of paying the per-pair accessor.
  [[nodiscard]] const std::vector<std::vector<int>>& distance_rows() const {
    ensure_distances();
    return distances_;
  }

  /// One shortest undirected path from a to b (inclusive of endpoints).
  /// Empty when disconnected.
  [[nodiscard]] std::vector<int> shortest_path(int a, int b) const;

  [[nodiscard]] bool is_connected() const;
  [[nodiscard]] int diameter() const;

  /// Sum of distances from q to all other qubits (used by placement
  /// heuristics to find the graph center).
  [[nodiscard]] long total_distance_from(int q) const;

 private:
  void check_qubit(int q) const;
  // Call with distance_mutex_ held; publishes distances_valid_ last.
  void compute_distances() const;
  // Double-checked fill of the cache; cheap acquire-load once warm.
  void ensure_distances() const;

  // Flat num_qubits x num_qubits link matrix behind the O(1) queries:
  // bit 0 = connected in some orientation, bit 1 = (row=control,
  // col=target) orientation allowed. Maintained by add_edge so
  // connected()/orientation_allowed() — the per-emitted-gate checks on
  // every router's hot path — never scan the edge list.
  static constexpr std::uint8_t kLinkConnected = 1;
  static constexpr std::uint8_t kLinkOriented = 2;
  std::vector<std::uint8_t> link_;

  int num_qubits_ = 0;
  std::vector<std::vector<int>> adjacency_;
  std::vector<Edge> edges_;
  // Distance matrix, computed lazily and invalidated by add_edge. Writes
  // happen under distance_mutex_; readers check the atomic flag first, so
  // a shared graph can take concurrent first distance() calls safely.
  mutable std::mutex distance_mutex_;
  mutable std::vector<std::vector<int>> distances_;
  mutable std::atomic<bool> distances_valid_{false};
};

}  // namespace qmap
