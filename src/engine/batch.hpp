// Throughput-oriented batch compilation: many circuits, one device, one
// thread pool. The front half of a production mapping service — a request
// queue fanned across workers — with results delivered in submission
// order regardless of completion order.
//
// Two modes:
//   * fixed-strategy (default): every circuit compiles with the same
//     CompilerOptions; one pool task per circuit.
//   * portfolio: every circuit races a full PortfolioCompiler portfolio;
//     the racing strategies of one circuit run serially inside its worker
//     (parallelism comes from circuit-level fan-out, which saturates the
//     pool without oversubscription).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/device.hpp"
#include "common/error.hpp"
#include "core/compiler.hpp"
#include "engine/portfolio.hpp"

namespace qmap {

struct BatchOptions {
  /// Worker threads (0 = hardware concurrency).
  int num_threads = 0;
  /// When true, each circuit runs the whole portfolio instead of the
  /// fixed `compiler` strategy.
  bool use_portfolio = false;
  /// Fixed-strategy mode settings (seed is re-derived per circuit).
  CompilerOptions compiler;
  /// Portfolio mode settings (base_seed is re-derived per circuit).
  PortfolioOptions portfolio;
  /// Base seed; circuit k uses Rng::derive_stream(base_seed, k), so batch
  /// results match the equivalent serial compilations bit for bit.
  std::uint64_t base_seed = 0xC0FFEE;
};

/// Outcome of one batch entry, in submission order. A poisoned item — a
/// throwing strategy, an invalid circuit, even a non-qmap exception from a
/// stage hook — is isolated here and never sinks its siblings.
struct BatchItem {
  bool ok = false;
  CompilationResult result;      // valid when ok
  std::string winner_label;      // portfolio mode: winning strategy
  std::string error;             // failure message when !ok
  /// Recovery taxonomy of the failure (meaningful when !ok).
  ErrorClass error_class = ErrorClass::Permanent;
  double wall_ms = 0.0;
};

struct BatchResult {
  std::vector<BatchItem> items;
  double wall_ms = 0.0;
  int num_threads = 1;

  [[nodiscard]] std::size_t ok_count() const;
  /// Sum of per-item wall times: the serial cost the pool amortized.
  [[nodiscard]] double total_item_ms() const;
  [[nodiscard]] std::string report() const;
  [[nodiscard]] Json to_json() const;
};

class BatchCompiler {
 public:
  explicit BatchCompiler(Device device, BatchOptions options = {});

  [[nodiscard]] const Device& device() const noexcept { return device_; }

  /// Compiles every circuit concurrently. Per-circuit failures are
  /// recorded in the matching BatchItem, never thrown: one bad circuit
  /// must not poison the whole batch — see BatchItem::error.
  [[nodiscard]] BatchResult compile_all(
      const std::vector<Circuit>& circuits) const;

 private:
  Device device_;
  BatchOptions options_;
};

}  // namespace qmap
