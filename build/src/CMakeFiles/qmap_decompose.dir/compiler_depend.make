# Empty compiler generated dependencies file for qmap_decompose.
# This may be replaced when dependencies are built.
