#include "arch/noise.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qmap {

NoiseModel::NoiseModel(int num_qubits)
    : single_qubit_error_(static_cast<std::size_t>(num_qubits), 0.0),
      readout_error_(static_cast<std::size_t>(num_qubits), 0.0),
      t1_us_(static_cast<std::size_t>(num_qubits), 50.0),
      t2_us_(static_cast<std::size_t>(num_qubits), 30.0) {}

NoiseModel NoiseModel::uniform(const CouplingGraph& coupling,
                               double single_qubit_error,
                               double two_qubit_error, double readout_error,
                               double t1_us, double t2_us) {
  NoiseModel model(coupling.num_qubits());
  for (int q = 0; q < coupling.num_qubits(); ++q) {
    model.set_single_qubit_error(q, single_qubit_error);
    model.set_readout_error(q, readout_error);
    model.set_coherence(q, t1_us, t2_us);
  }
  for (const auto& edge : coupling.edges()) {
    model.set_two_qubit_error(edge.a, edge.b, two_qubit_error);
  }
  return model;
}

NoiseModel NoiseModel::randomized(const CouplingGraph& coupling, Rng& rng,
                                  double single_qubit_error,
                                  double two_qubit_error,
                                  double readout_error, double spread,
                                  double t1_us, double t2_us) {
  if (spread < 1.0) throw DeviceError("noise spread must be >= 1");
  NoiseModel model(coupling.num_qubits());
  const auto draw = [&](double center) {
    // Log-uniform in [center/spread, center*spread].
    const double exponent = rng.uniform(-1.0, 1.0);
    return center * std::pow(spread, exponent);
  };
  for (int q = 0; q < coupling.num_qubits(); ++q) {
    model.set_single_qubit_error(q, draw(single_qubit_error));
    model.set_readout_error(q, draw(readout_error));
    model.set_coherence(q, draw(t1_us), draw(t2_us));
  }
  for (const auto& edge : coupling.edges()) {
    model.set_two_qubit_error(edge.a, edge.b, draw(two_qubit_error));
  }
  return model;
}

void NoiseModel::check_qubit(int qubit) const {
  if (qubit < 0 || qubit >= num_qubits()) {
    throw DeviceError("noise model: qubit out of range");
  }
}

double NoiseModel::single_qubit_error(int qubit) const {
  check_qubit(qubit);
  return single_qubit_error_[static_cast<std::size_t>(qubit)];
}

double NoiseModel::readout_error(int qubit) const {
  check_qubit(qubit);
  return readout_error_[static_cast<std::size_t>(qubit)];
}

double NoiseModel::t1_us(int qubit) const {
  check_qubit(qubit);
  return t1_us_[static_cast<std::size_t>(qubit)];
}

double NoiseModel::t2_us(int qubit) const {
  check_qubit(qubit);
  return t2_us_[static_cast<std::size_t>(qubit)];
}

double NoiseModel::two_qubit_error(int a, int b) const {
  check_qubit(a);
  check_qubit(b);
  const auto it =
      two_qubit_error_.find({std::min(a, b), std::max(a, b)});
  if (it == two_qubit_error_.end()) {
    throw DeviceError("noise model: no two-qubit calibration for Q" +
                      std::to_string(a) + "-Q" + std::to_string(b));
  }
  return it->second;
}

namespace {
void check_probability(double p, const char* what) {
  if (p < 0.0 || p >= 1.0) {
    throw DeviceError(std::string("noise model: ") + what +
                      " must be in [0, 1)");
  }
}
}  // namespace

void NoiseModel::set_single_qubit_error(int qubit, double error) {
  check_qubit(qubit);
  check_probability(error, "single-qubit error");
  single_qubit_error_[static_cast<std::size_t>(qubit)] = error;
}

void NoiseModel::set_readout_error(int qubit, double error) {
  check_qubit(qubit);
  check_probability(error, "readout error");
  readout_error_[static_cast<std::size_t>(qubit)] = error;
}

void NoiseModel::set_coherence(int qubit, double t1_us, double t2_us) {
  check_qubit(qubit);
  if (t1_us <= 0.0 || t2_us <= 0.0) {
    throw DeviceError("noise model: coherence times must be positive");
  }
  t1_us_[static_cast<std::size_t>(qubit)] = t1_us;
  t2_us_[static_cast<std::size_t>(qubit)] = t2_us;
}

void NoiseModel::set_two_qubit_error(int a, int b, double error) {
  check_qubit(a);
  check_qubit(b);
  check_probability(error, "two-qubit error");
  two_qubit_error_[{std::min(a, b), std::max(a, b)}] = error;
}

double NoiseModel::swap_log_cost(int a, int b) const {
  const double per_gate = two_qubit_error(a, b);
  return -3.0 * std::log(1.0 - per_gate);
}

Json NoiseModel::to_json() const {
  Json out;
  JsonArray single, readout, t1, t2;
  for (int q = 0; q < num_qubits(); ++q) {
    single.push_back(Json(single_qubit_error(q)));
    readout.push_back(Json(readout_error(q)));
    t1.push_back(Json(t1_us(q)));
    t2.push_back(Json(t2_us(q)));
  }
  out["single_qubit_error"] = Json(std::move(single));
  out["readout_error"] = Json(std::move(readout));
  out["t1_us"] = Json(std::move(t1));
  out["t2_us"] = Json(std::move(t2));
  JsonArray edges;
  for (const auto& [pair, error] : two_qubit_error_) {
    edges.push_back(Json(JsonArray{Json(pair.first), Json(pair.second),
                                   Json(error)}));
  }
  out["two_qubit_error"] = Json(std::move(edges));
  return out;
}

NoiseModel NoiseModel::from_json(const Json& json) {
  const JsonArray& single = json.at("single_qubit_error").as_array();
  NoiseModel model(static_cast<int>(single.size()));
  for (int q = 0; q < model.num_qubits(); ++q) {
    model.set_single_qubit_error(q,
                                 single[static_cast<std::size_t>(q)].as_number());
  }
  if (const Json* readout = json.find("readout_error")) {
    for (int q = 0; q < model.num_qubits(); ++q) {
      model.set_readout_error(
          q, readout->at(static_cast<std::size_t>(q)).as_number());
    }
  }
  if (const Json* t1 = json.find("t1_us")) {
    const Json* t2 = json.find("t2_us");
    for (int q = 0; q < model.num_qubits(); ++q) {
      model.set_coherence(
          q, t1->at(static_cast<std::size_t>(q)).as_number(),
          t2 != nullptr ? t2->at(static_cast<std::size_t>(q)).as_number()
                        : t1->at(static_cast<std::size_t>(q)).as_number());
    }
  }
  for (const Json& edge : json.at("two_qubit_error").as_array()) {
    model.set_two_qubit_error(edge.at(0).as_int(), edge.at(1).as_int(),
                              edge.at(2).as_number());
  }
  return model;
}

}  // namespace qmap
