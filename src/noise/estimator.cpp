#include "noise/estimator.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qmap {

double gate_log_cost(const Gate& gate, const Device& device) {
  const NoiseModel& noise = device.noise();
  switch (gate.kind) {
    case GateKind::Barrier:
      return 0.0;
    case GateKind::Measure:
      return -std::log(1.0 - noise.readout_error(gate.qubits[0]));
    case GateKind::SWAP:
      // SWAP placeholder: three native two-qubit gates on the edge.
      return noise.swap_log_cost(gate.qubits[0], gate.qubits[1]);
    default:
      break;
  }
  if (gate.is_two_qubit()) {
    return -std::log(1.0 -
                     noise.two_qubit_error(gate.qubits[0], gate.qubits[1]));
  }
  return -std::log(1.0 - noise.single_qubit_error(gate.qubits[0]));
}

double estimated_success_probability(const Circuit& circuit,
                                     const Device& device) {
  double log_cost = 0.0;
  for (const Gate& gate : circuit) {
    log_cost += gate_log_cost(gate, device);
  }
  return std::exp(-log_cost);
}

double estimated_success_probability(const Schedule& schedule,
                                     const Device& device) {
  double log_cost = 0.0;
  // Gate errors.
  for (const ScheduledGate& op : schedule.operations()) {
    log_cost += gate_log_cost(op.gate, device);
  }
  // Idle decoherence: from each qubit's first gate to its last gate, every
  // cycle it is not actively driven decays with T1.
  const NoiseModel& noise = device.noise();
  const double cycle_us = device.durations().cycle_ns / 1000.0;
  std::vector<int> first(static_cast<std::size_t>(schedule.num_qubits()), -1);
  std::vector<int> last(static_cast<std::size_t>(schedule.num_qubits()), -1);
  std::vector<int> busy(static_cast<std::size_t>(schedule.num_qubits()), 0);
  for (const ScheduledGate& op : schedule.operations()) {
    for (const int q : op.gate.qubits) {
      const auto idx = static_cast<std::size_t>(q);
      if (first[idx] < 0 || op.start_cycle < first[idx]) {
        first[idx] = op.start_cycle;
      }
      last[idx] = std::max(last[idx], op.end_cycle());
      busy[idx] += op.duration_cycles;
    }
  }
  for (int q = 0; q < schedule.num_qubits(); ++q) {
    const auto idx = static_cast<std::size_t>(q);
    if (first[idx] < 0) continue;  // untouched qubit: no decoherence counted
    const int idle_cycles = (last[idx] - first[idx]) - busy[idx];
    if (idle_cycles <= 0) continue;
    const double idle_us = idle_cycles * cycle_us;
    log_cost += idle_us / noise.t1_us(q);
  }
  return std::exp(-log_cost);
}

}  // namespace qmap
