#include "sim/equivalence.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sim/statevector.hpp"

namespace qmap {

bool circuits_equivalent(const Circuit& a, const Circuit& b, Rng& rng,
                         int trials, double tolerance) {
  if (a.num_qubits() != b.num_qubits()) return false;
  for (int trial = 0; trial < trials; ++trial) {
    StateVector state_a(a.num_qubits());
    state_a.randomize(rng);
    StateVector state_b = state_a;
    state_a.run(a.unitary_part());
    state_b.run(b.unitary_part());
    if (!state_a.approx_equal(state_b, tolerance)) return false;
  }
  return true;
}

bool circuits_equivalent_exact(const Circuit& a, const Circuit& b,
                               double tolerance) {
  if (a.num_qubits() != b.num_qubits()) return false;
  const Matrix ua = circuit_unitary(a.unitary_part());
  const Matrix ub = circuit_unitary(b.unitary_part());
  return ua.equal_up_to_global_phase(ub, tolerance);
}

bool mapping_equivalent(const Circuit& original, const Circuit& mapped,
                        const std::vector<int>& initial_wire_to_phys,
                        const std::vector<int>& final_wire_to_phys, Rng& rng,
                        int trials, double tolerance) {
  const int m = mapped.num_qubits();
  const int n = original.num_qubits();
  if (n > m) {
    throw SimulationError("original circuit wider than mapped circuit");
  }
  const auto check_bijection = [m](const std::vector<int>& wire_to_phys) {
    if (wire_to_phys.size() != static_cast<std::size_t>(m)) return false;
    std::vector<bool> seen(static_cast<std::size_t>(m), false);
    for (const int p : wire_to_phys) {
      if (p < 0 || p >= m || seen[static_cast<std::size_t>(p)]) return false;
      seen[static_cast<std::size_t>(p)] = true;
    }
    return true;
  };
  if (!check_bijection(initial_wire_to_phys) ||
      !check_bijection(final_wire_to_phys)) {
    throw SimulationError("placements must be bijections over the device");
  }

  // Original program gates executed at their initial physical locations.
  Circuit embedded(m, original.name() + "_embedded");
  std::vector<int> program_map(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    program_map[static_cast<std::size_t>(k)] =
        initial_wire_to_phys[static_cast<std::size_t>(k)];
  }
  embedded.append_mapped(original.unitary_part(), program_map);

  for (int trial = 0; trial < trials; ++trial) {
    StateVector reference(m);
    reference.randomize(rng);
    StateVector routed = reference;
    reference.run(embedded);
    // Wire w's content moved from initial_wire_to_phys[w] to
    // final_wire_to_phys[w].
    reference.permute(initial_wire_to_phys, final_wire_to_phys);
    routed.run(mapped.unitary_part());
    if (!reference.approx_equal(routed, tolerance)) return false;
  }
  return true;
}

}  // namespace qmap
