# Empty compiler generated dependencies file for bench_fig5_qmap_routing.
# This may be replaced when dependencies are built.
