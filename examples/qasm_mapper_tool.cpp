// qasm_mapper_tool: a small command-line mapper, the shape of tool a user
// of this library would actually ship.
//
//   example_qasm_mapper_tool <circuit.qasm> [device] [router] [placer]
//                            [--json]
//
//   device: qx4 | qx5 | surface17 | surface7 | path to a JSON device config
//   router: naive | sabre | sabre+commute | astar | exact | qmap |
//           reliability | shuttle                       (default sabre)
//   placer: identity | greedy | exhaustive | annealing | bidirectional |
//           reliability                                 (default greedy)
//   --json: print the machine-readable compilation report to stderr
//
// Reads OpenQASM 2.0 (or cQASM when the file ends in .cq/.cqasm), compiles
// it to the device, verifies the result by simulation, prints a report and
// writes the mapped circuit as OpenQASM to stdout.
//
// Without arguments it runs a self-demo on the built-in Fig. 1 example.
#include <iostream>
#include <string>

#include "arch/builtin.hpp"
#include "arch/config.hpp"
#include "core/compiler.hpp"
#include "qasm/cqasm.hpp"
#include "qasm/openqasm.hpp"
#include "workloads/workloads.hpp"

namespace {

qmap::Device select_device(const std::string& name) {
  using namespace qmap;
  if (name == "qx4") return devices::ibm_qx4();
  if (name == "qx5") return devices::ibm_qx5();
  if (name == "surface17" || name == "s17") return devices::surface17();
  if (name == "surface7" || name == "s7") return devices::surface7();
  return load_device(name);  // treat as config-file path
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qmap;
  try {
    bool json_report = false;
    std::vector<char*> positional;
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--json") json_report = true;
      else positional.push_back(argv[i]);
    }
    argc = static_cast<int>(positional.size()) + 1;
    for (std::size_t i = 0; i < positional.size(); ++i) {
      argv[i + 1] = positional[i];
    }
    Circuit circuit =
        argc > 1 ? (std::string(argv[1]).ends_with(".cq") ||
                            std::string(argv[1]).ends_with(".cqasm")
                        ? load_cqasm(argv[1])
                        : load_openqasm(argv[1]))
                 : workloads::fig1_example();
    const Device device = select_device(argc > 2 ? argv[2] : "qx4");
    CompilerOptions options;
    if (argc > 3) options.router = argv[3];
    if (argc > 4) options.placer = argv[4];

    const Compiler compiler(device, options);
    const CompilationResult result = compiler.compile(circuit);

    if (json_report) {
      std::cerr << result.to_json().dump(2) << "\n";
    } else {
      std::cerr << result.report();
    }
    std::cerr << "verification: "
              << (Compiler::verify(result) ? "EQUIVALENT" : "MISMATCH")
              << "\n";
    std::cout << to_openqasm(result.final_circuit);
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
