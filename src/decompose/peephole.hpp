// Peephole circuit optimization.
//
// Mapping inflates circuits with structured redundancy: consecutive
// inverted CNOTs produce cancelling Hadamard pairs (handled by
// fuse_single_qubit), back-to-back identical CX/CZ/SWAP pairs arise when a
// routed qubit bounces, and rotation chains accumulate. Minimizing the
// resulting gate count is exactly the paper's first cost function
// (Sec. III-B); heuristic mappers like [54] bundle such clean-up passes.
//
// All passes are semantics-preserving (verified by the tests at the
// unitary level).
#pragma once

#include "ir/circuit.hpp"

namespace qmap {

/// Cancels adjacent self-inverse two-qubit pairs: CX(a,b) CX(a,b) -> I
/// (same for CZ and SWAP; CZ/SWAP also cancel with reversed operands).
/// "Adjacent" means no other gate touches either qubit in between.
[[nodiscard]] Circuit cancel_two_qubit_pairs(const Circuit& circuit);

/// Merges runs of same-axis rotations on one qubit: Rz(a) Rz(b) ->
/// Rz(a+b); drops rotations with angle ~ 0 (mod 4*pi). Also merges
/// CPhase/CRz pairs on identical operand pairs.
[[nodiscard]] Circuit merge_rotations(const Circuit& circuit);

/// Runs the peephole stack to a fixed point (bounded iterations):
/// cancel_two_qubit_pairs + merge_rotations, interleaved with single-qubit
/// fusion on native-unrestricted circuits is left to the caller.
[[nodiscard]] Circuit peephole_optimize(const Circuit& circuit,
                                        int max_iterations = 8);

}  // namespace qmap
