// Portfolio engine walkthrough: compile one workload-suite circuit on
// Surface-17 with the full default strategy portfolio, print the
// per-strategy telemetry table, the observability span tree of the race,
// and the JSON blob a service would log, then show the BatchCompiler
// throughput path over several circuits. Exits non-zero if any result
// fails simulation-based verification.
#include <iostream>

#include "arch/builtin.hpp"
#include "engine/batch.hpp"
#include "engine/portfolio.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace qmap;

  const Device device = devices::surface17();
  const Circuit circuit = workloads::qft(5);

  // --- One circuit, the whole portfolio -----------------------------------
  obs::Observer observer;
  PortfolioOptions options;
  options.cost_name = "gates";          // select by routed 2q-gate count
  options.strategy_deadline_ms = 2000;  // soft cap per strategy
  options.obs = &observer;              // record spans + metrics
  const PortfolioCompiler portfolio(device, options);

  std::cout << "racing " << portfolio.strategies().size()
            << " strategies for " << circuit.name() << " on "
            << device.name() << "...\n\n";
  const PortfolioResult result = portfolio.compile(circuit);
  std::cout << result.report() << "\n";

  if (!Compiler::verify(result.best)) {
    std::cerr << "verification failed for the portfolio winner\n";
    return 1;
  }
  std::cout << "winner verified by state-vector equivalence\n\n";

  std::cout << "span tree of the race (obs::ascii_span_tree; export the "
               "same observer\nwith obs::export_chrome_trace to load it in "
               "Perfetto):\n"
            << obs::ascii_span_tree(observer) << "\n";

  std::cout << "telemetry JSON (winner + per-strategy records):\n"
            << result.to_json().dump(2) << "\n\n";

  // --- Many circuits, one pool (throughput mode) --------------------------
  std::vector<Circuit> batch_circuits = {
      workloads::ghz(6), workloads::qft(4), workloads::fig1_example(),
      workloads::cuccaro_adder(2)};
  BatchOptions batch_options;
  batch_options.use_portfolio = true;
  const BatchCompiler batch(device, batch_options);
  const BatchResult batch_result = batch.compile_all(batch_circuits);
  std::cout << batch_result.report();

  for (const BatchItem& item : batch_result.items) {
    if (!item.ok || !Compiler::verify(item.result)) {
      std::cerr << "batch item failed\n";
      return 1;
    }
  }
  std::cout << "all batch results verified\n";
  return 0;
}
