#include "arch/config.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace qmap {

Device device_from_json(const Json& config) {
  const int n = config.at("num_qubits").as_int();
  CouplingGraph coupling(n);
  if (const Json* edges = config.find("edges")) {
    for (const Json& edge : edges->as_array()) {
      coupling.add_edge(edge.at(0).as_int(), edge.at(1).as_int(),
                        /*directed=*/false);
    }
  }
  if (const Json* edges = config.find("directed_edges")) {
    for (const Json& edge : edges->as_array()) {
      coupling.add_edge(edge.at(0).as_int(), edge.at(1).as_int(),
                        /*directed=*/true);
    }
  }
  std::string name = "device";
  if (const Json* j = config.find("name")) name = j->as_string();
  Device device(name, std::move(coupling));

  if (const Json* j = config.find("native_two_qubit")) {
    device.set_native_two_qubit(gate_kind_from_name(j->as_string()));
  }
  if (const Json* j = config.find("native_single_qubit")) {
    std::vector<GateKind> kinds;
    for (const Json& k : j->as_array()) {
      kinds.push_back(gate_kind_from_name(k.as_string()));
    }
    device.set_native_single_qubit(std::move(kinds));
  }
  if (const Json* j = config.find("durations")) {
    Durations d;
    if (const Json* v = j->find("cycle_ns")) d.cycle_ns = v->as_number();
    if (const Json* v = j->find("single_qubit")) {
      d.single_qubit_cycles = v->as_int();
    }
    if (const Json* v = j->find("two_qubit")) d.two_qubit_cycles = v->as_int();
    if (const Json* v = j->find("measure")) d.measure_cycles = v->as_int();
    if (const Json* v = j->find("move")) d.move_cycles = v->as_int();
    device.set_durations(d);
  }
  if (const Json* j = config.find("supports_shuttling")) {
    device.set_supports_shuttling(j->as_bool());
  }
  if (const Json* j = config.find("max_parallel_two_qubit")) {
    device.set_max_parallel_two_qubit(j->as_int());
  }
  if (const Json* j = config.find("measurable")) {
    std::vector<bool> mask;
    for (const Json& v : j->as_array()) mask.push_back(v.as_bool());
    device.set_measurable(std::move(mask));
  }
  const auto read_int_vector = [](const Json& array) {
    std::vector<int> out;
    for (const Json& v : array.as_array()) out.push_back(v.as_int());
    return out;
  };
  if (const Json* j = config.find("frequency_groups")) {
    device.set_frequency_groups(read_int_vector(*j));
  }
  if (const Json* j = config.find("feedlines")) {
    device.set_feedlines(read_int_vector(*j));
  }
  if (const Json* j = config.find("noise")) {
    device.set_noise(NoiseModel::from_json(*j));
  }
  if (const Json* j = config.find("coordinates")) {
    std::vector<std::pair<double, double>> coords;
    for (const Json& pair : j->as_array()) {
      coords.emplace_back(pair.at(0).as_number(), pair.at(1).as_number());
    }
    if (coords.size() != static_cast<std::size_t>(n)) {
      throw DeviceError("coordinates array size mismatch");
    }
    device.set_coordinates(std::move(coords));
  }
  return device;
}

Device device_from_json_text(const std::string& text) {
  return device_from_json(Json::parse(text));
}

Device load_device(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw DeviceError("cannot open device config: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return device_from_json_text(buffer.str());
}

Json device_to_json(const Device& device) {
  Json out;
  out["name"] = Json(device.name());
  out["num_qubits"] = Json(device.num_qubits());
  JsonArray symmetric;
  JsonArray directed;
  for (const auto& edge : device.coupling().edges()) {
    if (edge.a_to_b && edge.b_to_a) {
      symmetric.push_back(Json(JsonArray{Json(edge.a), Json(edge.b)}));
    } else if (edge.a_to_b) {
      directed.push_back(Json(JsonArray{Json(edge.a), Json(edge.b)}));
    } else {
      directed.push_back(Json(JsonArray{Json(edge.b), Json(edge.a)}));
    }
  }
  if (!symmetric.empty()) out["edges"] = Json(std::move(symmetric));
  if (!directed.empty()) out["directed_edges"] = Json(std::move(directed));
  out["native_two_qubit"] =
      Json(std::string(gate_info(device.native_two_qubit()).name));
  if (!device.native_single_qubit().empty()) {
    JsonArray singles;
    for (const GateKind kind : device.native_single_qubit()) {
      singles.push_back(Json(std::string(gate_info(kind).name)));
    }
    out["native_single_qubit"] = Json(std::move(singles));
  }
  const Durations& d = device.durations();
  Json durations;
  durations["cycle_ns"] = Json(d.cycle_ns);
  durations["single_qubit"] = Json(d.single_qubit_cycles);
  durations["two_qubit"] = Json(d.two_qubit_cycles);
  durations["measure"] = Json(d.measure_cycles);
  durations["move"] = Json(d.move_cycles);
  out["durations"] = std::move(durations);
  if (device.supports_shuttling()) out["supports_shuttling"] = Json(true);
  if (device.max_parallel_two_qubit() > 0) {
    out["max_parallel_two_qubit"] = Json(device.max_parallel_two_qubit());
  }
  if (!device.measurable_mask().empty()) {
    JsonArray mask;
    for (const bool m : device.measurable_mask()) mask.push_back(Json(m));
    out["measurable"] = Json(std::move(mask));
  }
  const auto write_int_vector = [](const std::vector<int>& values) {
    JsonArray array;
    for (const int v : values) array.push_back(Json(v));
    return Json(std::move(array));
  };
  if (!device.frequency_groups().empty()) {
    out["frequency_groups"] = write_int_vector(device.frequency_groups());
  }
  if (!device.feedlines().empty()) {
    out["feedlines"] = write_int_vector(device.feedlines());
  }
  if (device.has_noise()) {
    out["noise"] = device.noise().to_json();
  }
  if (!device.coordinates().empty()) {
    JsonArray coords;
    for (const auto& [r, c] : device.coordinates()) {
      coords.push_back(Json(JsonArray{Json(r), Json(c)}));
    }
    out["coordinates"] = Json(std::move(coords));
  }
  return out;
}

void save_device(const Device& device, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw DeviceError("cannot write device config: " + path);
  out << device_to_json(device).dump(2) << "\n";
}

}  // namespace qmap
