file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_qmap_routing.dir/bench_fig5_qmap_routing.cpp.o"
  "CMakeFiles/bench_fig5_qmap_routing.dir/bench_fig5_qmap_routing.cpp.o.d"
  "bench_fig5_qmap_routing"
  "bench_fig5_qmap_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_qmap_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
