// Schedule: gates with explicit start cycles — the paper's "partial
// schedule with the timing information and explicit parallelism"
// (Sec. VI-B), discretized into clock cycles ("the greatest common divisor
// of the gates' duration").
#pragma once

#include <string>
#include <vector>

#include "arch/device.hpp"
#include "ir/circuit.hpp"

namespace qmap {

struct ScheduledGate {
  Gate gate;
  int start_cycle = 0;
  int duration_cycles = 0;

  [[nodiscard]] int end_cycle() const { return start_cycle + duration_cycles; }
  /// True when the execution windows of the two gates overlap.
  [[nodiscard]] bool overlaps(const ScheduledGate& other) const {
    return start_cycle < other.end_cycle() && other.start_cycle < end_cycle();
  }
};

class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(int num_qubits) : num_qubits_(num_qubits) {}

  [[nodiscard]] int num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] const std::vector<ScheduledGate>& operations() const noexcept {
    return operations_;
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return operations_.size();
  }

  void add(ScheduledGate op) { operations_.push_back(std::move(op)); }

  /// Total latency in cycles (max end cycle).
  [[nodiscard]] int total_cycles() const;
  /// Latency in nanoseconds under `cycle_ns`.
  [[nodiscard]] double total_ns(double cycle_ns) const {
    return total_cycles() * cycle_ns;
  }

  /// The flat circuit in start-cycle order (ties: insertion order).
  [[nodiscard]] Circuit to_circuit(const std::string& name = "scheduled") const;

  /// Checks that no two overlapping gates share a qubit and that gates on a
  /// common qubit appear in an order consistent with `source` program order
  /// (same relative order of that qubit's gates).
  [[nodiscard]] bool is_consistent_with(const Circuit& source) const;

  /// Cycle-discretized table, one row per cycle, one column per qubit
  /// (Sec. VI-B's schedule representation).
  [[nodiscard]] std::string to_table() const;

 private:
  int num_qubits_ = 0;
  std::vector<ScheduledGate> operations_;
};

}  // namespace qmap
