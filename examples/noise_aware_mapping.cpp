// Noise-aware mapping walkthrough — the Sec. III-B "reliability" cost
// function in action.
//
// Builds a Surface-17 with heterogeneous calibration data (as a real cloud
// backend would publish), maps a circuit twice — once optimizing distance,
// once optimizing reliability — and compares the two mappings on the
// analytic Estimated Success Probability and on Monte Carlo trajectory
// fidelity.
#include <cstdio>
#include <iostream>

#include "arch/builtin.hpp"
#include "core/compiler.hpp"
#include "core/report.hpp"
#include "noise/estimator.hpp"
#include "noise/trajectory.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace qmap;

  // A Surface-17 with a bad corner: heterogeneous calibration, 4x spread.
  Device device = devices::surface17();
  Rng calibration_rng(2026);
  device.set_noise(NoiseModel::randomized(device.coupling(), calibration_rng,
                                          /*1q*/ 1e-3, /*2q*/ 1.5e-2,
                                          /*readout*/ 2e-2, /*spread*/ 4.0));
  std::cout << "calibration snapshot (two-qubit error per coupler):\n";
  for (const auto& edge : device.coupling().edges()) {
    std::printf("  Q%-2d - Q%-2d : %.4f\n", edge.a, edge.b,
                device.noise().two_qubit_error(edge.a, edge.b));
  }

  const Circuit circuit = workloads::qft(5);
  std::cout << "\nworkload: " << circuit.name() << "\n\n";

  TextTable table(
      {"objective", "placer", "router", "swaps", "ESP", "MC fidelity"});
  for (const auto& [objective, placer, router] :
       {std::tuple{"distance", "greedy", "sabre"},
        std::tuple{"reliability", "reliability", "reliability"}}) {
    CompilerOptions options;
    options.placer = placer;
    options.router = router;
    const Compiler compiler(device, options);
    const CompilationResult result = compiler.compile(circuit);
    if (!Compiler::verify(result)) {
      std::cerr << "verification failed for " << objective << "\n";
      return 1;
    }
    const double esp =
        estimated_success_probability(result.final_circuit, device);
    Rng mc_rng(7);
    // 60 trajectories keeps the 17-qubit Monte Carlo interactive; raise it
    // for tighter error bars.
    const TrajectoryResult mc =
        simulate_noisy(result.final_circuit, device, mc_rng, 60);
    table.add_row({objective, placer, router,
                   TextTable::num(result.routing.added_swaps),
                   TextTable::num(esp, 4), TextTable::num(mc.fidelity, 3)});
  }
  std::cout << table.str();
  std::cout << "\nBoth mappings are unitarily equivalent to the input; the "
               "reliability-aware one simply spends its SWAP budget on "
               "better-calibrated couplers (Sec. III-B, [45]-[47], [50]).\n";
  return 0;
}
