#include "arch/artifacts.hpp"

#include <algorithm>
#include <deque>

#include "common/error.hpp"

namespace qmap {

void ArchArtifacts::check_qubit(int q) const {
  if (q < 0 || q >= num_qubits_) {
    throw DeviceError("physical qubit Q" + std::to_string(q) +
                      " out of range (artifacts cover " +
                      std::to_string(num_qubits_) + " qubits)");
  }
}

ArchArtifacts ArchArtifacts::build(const Device& device) {
  ArchArtifacts artifacts;
  const CouplingGraph& coupling = device.coupling();
  const int n = coupling.num_qubits();
  const auto size = static_cast<std::size_t>(n);
  artifacts.num_qubits_ = n;
  artifacts.dist_.assign(size * size, -1);
  artifacts.parent_.assign(size * size, -1);
  artifacts.neighbors_.resize(size);
  for (int q = 0; q < n; ++q) {
    artifacts.neighbors_[static_cast<std::size_t>(q)] = coupling.neighbors(q);
  }

  // One BFS per source fills both the distance row and the parent row.
  // Neighbour lists are ascending and parents are assigned on first
  // discovery — exactly CouplingGraph::shortest_path's BFS, so the
  // reconstructed paths match it byte for byte.
  for (int source = 0; source < n; ++source) {
    const std::size_t row = static_cast<std::size_t>(source) * size;
    artifacts.dist_[row + static_cast<std::size_t>(source)] = 0;
    artifacts.parent_[row + static_cast<std::size_t>(source)] = source;
    std::deque<int> queue{source};
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop_front();
      for (const int v : artifacts.neighbors_[static_cast<std::size_t>(u)]) {
        if (artifacts.dist_[row + static_cast<std::size_t>(v)] < 0) {
          artifacts.dist_[row + static_cast<std::size_t>(v)] =
              artifacts.dist_[row + static_cast<std::size_t>(u)] + 1;
          artifacts.parent_[row + static_cast<std::size_t>(v)] = u;
          queue.push_back(v);
        }
      }
    }
  }

  artifacts.total_distance_.assign(size, 0);
  bool connected = true;
  int diameter = 0;
  for (int a = 0; a < n; ++a) {
    long sum = 0;
    bool row_connected = true;
    for (int b = 0; b < n; ++b) {
      const int d =
          artifacts.dist_[static_cast<std::size_t>(a) * size +
                          static_cast<std::size_t>(b)];
      if (d < 0) {
        row_connected = false;
        connected = false;
        continue;
      }
      sum += d;
      diameter = std::max(diameter, d);
    }
    artifacts.total_distance_[static_cast<std::size_t>(a)] =
        row_connected ? sum : -1;
  }
  artifacts.diameter_ = connected ? diameter : -1;

  const auto num_kinds = static_cast<std::size_t>(GateKind::Barrier) + 1;
  artifacts.native_kind_.assign(num_kinds, false);
  for (std::size_t k = 0; k < num_kinds; ++k) {
    artifacts.native_kind_[k] =
        device.is_native_kind(static_cast<GateKind>(k));
  }
  artifacts.native_two_qubit_ = device.native_two_qubit();
  return artifacts;
}

std::shared_ptr<const ArchArtifacts> ArchArtifacts::shared(
    const Device& device) {
  return std::make_shared<const ArchArtifacts>(build(device));
}

int ArchArtifacts::distance(int a, int b) const {
  check_qubit(a);
  check_qubit(b);
  return dist_[static_cast<std::size_t>(a) *
                   static_cast<std::size_t>(num_qubits_) +
               static_cast<std::size_t>(b)];
}

long ArchArtifacts::total_distance_from(int q) const {
  check_qubit(q);
  return total_distance_[static_cast<std::size_t>(q)];
}

int ArchArtifacts::parent(int source, int v) const {
  check_qubit(source);
  check_qubit(v);
  return parent_[static_cast<std::size_t>(source) *
                     static_cast<std::size_t>(num_qubits_) +
                 static_cast<std::size_t>(v)];
}

std::vector<int> ArchArtifacts::shortest_path(int a, int b) const {
  check_qubit(a);
  check_qubit(b);
  if (a == b) return {a};
  const std::size_t row =
      static_cast<std::size_t>(a) * static_cast<std::size_t>(num_qubits_);
  if (parent_[row + static_cast<std::size_t>(b)] < 0) return {};
  std::vector<int> path;
  for (int v = b; v != a; v = parent_[row + static_cast<std::size_t>(v)]) {
    path.push_back(v);
  }
  path.push_back(a);
  std::reverse(path.begin(), path.end());
  return path;
}

const std::vector<int>& ArchArtifacts::neighbors(int q) const {
  check_qubit(q);
  return neighbors_[static_cast<std::size_t>(q)];
}

bool ArchArtifacts::is_native_kind(GateKind kind) const {
  const auto index = static_cast<std::size_t>(kind);
  if (index >= native_kind_.size()) return false;
  return native_kind_[index];
}

}  // namespace qmap
