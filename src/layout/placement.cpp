#include "layout/placement.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qmap {

Placement Placement::identity(int num_program_qubits,
                              int num_physical_qubits) {
  if (num_program_qubits > num_physical_qubits) {
    throw MappingError("program needs " + std::to_string(num_program_qubits) +
                       " qubits but device has only " +
                       std::to_string(num_physical_qubits));
  }
  Placement p;
  p.num_program_qubits_ = num_program_qubits;
  p.wire_to_phys_.resize(static_cast<std::size_t>(num_physical_qubits));
  p.phys_to_wire_.resize(static_cast<std::size_t>(num_physical_qubits));
  for (int w = 0; w < num_physical_qubits; ++w) {
    p.wire_to_phys_[static_cast<std::size_t>(w)] = w;
    p.phys_to_wire_[static_cast<std::size_t>(w)] = w;
  }
  return p;
}

Placement Placement::from_program_map(const std::vector<int>& program_to_phys,
                                      int num_physical_qubits) {
  const int n = static_cast<int>(program_to_phys.size());
  if (n > num_physical_qubits) {
    throw MappingError("more program qubits than physical qubits");
  }
  Placement p;
  p.num_program_qubits_ = n;
  p.wire_to_phys_.assign(static_cast<std::size_t>(num_physical_qubits), -1);
  p.phys_to_wire_.assign(static_cast<std::size_t>(num_physical_qubits), -1);
  for (int k = 0; k < n; ++k) {
    const int phys = program_to_phys[static_cast<std::size_t>(k)];
    if (phys < 0 || phys >= num_physical_qubits) {
      throw MappingError("placement target out of range");
    }
    if (p.phys_to_wire_[static_cast<std::size_t>(phys)] != -1) {
      throw MappingError("two program qubits placed on physical qubit Q" +
                         std::to_string(phys));
    }
    p.wire_to_phys_[static_cast<std::size_t>(k)] = phys;
    p.phys_to_wire_[static_cast<std::size_t>(phys)] = k;
  }
  // Free wires occupy the remaining physical qubits in ascending order.
  int wire = n;
  for (int phys = 0; phys < num_physical_qubits; ++phys) {
    if (p.phys_to_wire_[static_cast<std::size_t>(phys)] == -1) {
      p.phys_to_wire_[static_cast<std::size_t>(phys)] = wire;
      p.wire_to_phys_[static_cast<std::size_t>(wire)] = phys;
      ++wire;
    }
  }
  return p;
}

void Placement::check_phys(int p) const {
  if (p < 0 || p >= num_physical_qubits()) {
    throw MappingError("physical qubit Q" + std::to_string(p) +
                       " out of range");
  }
}

int Placement::phys_of_program(int k) const {
  if (k < 0 || k >= num_program_qubits_) {
    throw MappingError("program qubit q" + std::to_string(k) +
                       " out of range");
  }
  return wire_to_phys_[static_cast<std::size_t>(k)];
}

int Placement::program_at_phys(int p) const {
  check_phys(p);
  const int wire = phys_to_wire_[static_cast<std::size_t>(p)];
  return wire < num_program_qubits_ ? wire : -1;
}

int Placement::wire_at_phys(int p) const {
  check_phys(p);
  return phys_to_wire_[static_cast<std::size_t>(p)];
}

int Placement::phys_of_wire(int w) const {
  if (w < 0 || w >= num_physical_qubits()) {
    throw MappingError("wire out of range");
  }
  return wire_to_phys_[static_cast<std::size_t>(w)];
}

std::vector<int> Placement::phys_to_program() const {
  std::vector<int> out(phys_to_wire_.size(), -1);
  for (std::size_t p = 0; p < phys_to_wire_.size(); ++p) {
    const int wire = phys_to_wire_[p];
    out[p] = wire < num_program_qubits_ ? wire : -1;
  }
  return out;
}

void Placement::apply_swap(int phys_a, int phys_b) {
  check_phys(phys_a);
  check_phys(phys_b);
  const int wire_a = phys_to_wire_[static_cast<std::size_t>(phys_a)];
  const int wire_b = phys_to_wire_[static_cast<std::size_t>(phys_b)];
  std::swap(phys_to_wire_[static_cast<std::size_t>(phys_a)],
            phys_to_wire_[static_cast<std::size_t>(phys_b)]);
  std::swap(wire_to_phys_[static_cast<std::size_t>(wire_a)],
            wire_to_phys_[static_cast<std::size_t>(wire_b)]);
}

std::string Placement::to_string() const {
  std::string out = "[";
  for (int p = 0; p < num_physical_qubits(); ++p) {
    if (p != 0) out += ", ";
    const int program = program_at_phys(p);
    out += "Q" + std::to_string(p) + ":";
    out += program < 0 ? "free" : "q" + std::to_string(program);
  }
  out += "]";
  return out;
}

}  // namespace qmap
