// Bounded differential-fuzz smoke: seeded random circuits fanned across
// every applicable placer x router strategy on the paper's devices must
// map to valid, equivalent circuits. Runs under the `fuzz` ctest label
// with a hard timeout (tests/CMakeLists.txt) so a runaway router fails
// fast instead of hanging the suite.
//
// Budget note: QX4 fuzzes with general (non-Clifford) circuits — 5 qubits
// keep the state-vector oracle cheap. QX5 and Surface-17 are too wide for
// state vectors at this volume, so they fuzz Clifford-only circuits and
// the exact stabilizer-tableau oracle checks equivalence at full width.
#include <gtest/gtest.h>

#include "arch/builtin.hpp"
#include "verify/fuzzer.hpp"

namespace qmap::verify {
namespace {

TEST(DifferentialFuzz, Qx4AllStrategiesStateVector) {
  FuzzOptions options;
  options.num_circuits = 15;
  options.min_qubits = 2;
  options.max_qubits = 5;
  options.min_gates = 4;
  options.max_gates = 25;
  options.base_seed = 0x51D0A;
  options.trials = 2;
  // Empty placers/routers = everything applicable: QX4's 5 qubits keep
  // even the exhaustive placer and the exact router in play.
  const DifferentialFuzzer fuzzer({devices::ibm_qx4()}, options);
  const auto strategies = fuzzer.strategies_for(devices::ibm_qx4());
  ASSERT_GE(strategies.size(), 12u);
  // The default enumeration covers the BRIDGE router and the
  // token_swap_finisher pipeline variants ("+tsf" labels).
  bool saw_bridge = false;
  bool saw_finisher = false;
  for (const FuzzStrategy& strategy : strategies) {
    saw_bridge = saw_bridge || strategy.router == "bridge";
    saw_finisher = saw_finisher || strategy.finisher;
  }
  EXPECT_TRUE(saw_bridge);
  EXPECT_TRUE(saw_finisher);
  const FuzzReport report = fuzzer.run();
  EXPECT_TRUE(report.ok()) << report.report();
  EXPECT_GT(report.runs, 0u);
  for (const StrategyTally& tally : report.tallies) {
    EXPECT_GT(tally.runs, 0u) << tally.strategy.label();
  }
}

TEST(DifferentialFuzz, WideDevicesCliffordTableau) {
  FuzzOptions options;
  options.num_circuits = 20;
  options.min_qubits = 3;
  options.max_qubits = 8;
  options.min_gates = 8;
  options.max_gates = 35;
  options.clifford_only = true;  // exact tableau oracle at 16/17 qubits
  options.base_seed = 0xC11FF;
  options.placers = {"identity", "greedy", "annealing", "bidirectional"};
  options.routers = {"naive", "sabre", "sabre+commute", "bridge", "astar",
                     "qmap"};
  const DifferentialFuzzer fuzzer(
      {devices::ibm_qx5(), devices::surface17()}, options);
  const FuzzReport report = fuzzer.run();
  EXPECT_TRUE(report.ok()) << report.report();
  // Clifford circuits are tableau-checkable at any width: the oracle must
  // never have been skipped.
  for (const StrategyTally& tally : report.tallies) {
    EXPECT_EQ(tally.equivalence_skipped, 0u) << tally.strategy.label();
  }
}

TEST(DifferentialFuzz, Surface17MixedGateSet) {
  // A small non-Clifford batch on Surface-17 exercises the {Rx, Ry, CZ}
  // lowering and the constrained scheduler; widths stay under the
  // state-vector cap so equivalence is still checked.
  FuzzOptions options;
  options.num_circuits = 10;
  options.min_qubits = 3;
  options.max_qubits = 6;
  options.min_gates = 6;
  options.max_gates = 24;
  options.base_seed = 0x517;
  options.trials = 2;
  options.max_statevector_qubits = 17;
  options.placers = {"greedy"};
  options.routers = {"naive", "sabre", "bridge", "astar", "qmap"};
  const FuzzReport report =
      DifferentialFuzzer({devices::surface17()}, options).run();
  EXPECT_TRUE(report.ok()) << report.report();
}

TEST(DifferentialFuzz, ReportIsByteIdenticalAcrossThreadCounts) {
  FuzzOptions options;
  options.num_circuits = 8;
  options.max_qubits = 5;
  options.max_gates = 20;
  options.base_seed = 0xD15C0;
  options.trials = 2;
  options.placers = {"identity", "greedy"};
  options.routers = {"naive", "sabre", "astar"};

  std::vector<std::string> fingerprints;
  for (const int threads : {1, 2, 8}) {
    options.num_threads = threads;
    const FuzzReport report =
        DifferentialFuzzer({devices::ibm_qx4(), devices::surface7()}, options)
            .run();
    EXPECT_TRUE(report.ok()) << report.report();
    fingerprints.push_back(report.fingerprint());
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
  EXPECT_EQ(fingerprints[0], fingerprints[2]);
}

TEST(DifferentialFuzz, FingerprintCapturesPlantedFailures) {
  // Same campaign with and without a planted fault: the fault must change
  // the fingerprint (failures are part of the digest), and the two
  // faulty runs must agree with each other.
  FuzzOptions options;
  options.num_circuits = 5;
  options.min_qubits = 4;
  options.max_qubits = 5;
  options.min_gates = 14;
  options.max_gates = 24;
  options.two_qubit_fraction = 0.6;
  options.base_seed = 0xFA117;
  options.trials = 2;
  options.placers = {"greedy"};
  options.routers = {"sabre"};
  options.shrink_failures = false;

  const FuzzReport clean =
      DifferentialFuzzer({devices::ibm_qx4()}, options).run();
  options.fault = FaultInjection::DropLastSwap;
  const FuzzReport faulty1 =
      DifferentialFuzzer({devices::ibm_qx4()}, options).run();
  const FuzzReport faulty2 =
      DifferentialFuzzer({devices::ibm_qx4()}, options).run();

  EXPECT_TRUE(clean.ok()) << clean.report();
  EXPECT_FALSE(faulty1.ok()) << "planted SWAP drop went unnoticed";
  EXPECT_NE(clean.fingerprint(), faulty1.fingerprint());
  EXPECT_EQ(faulty1.fingerprint(), faulty2.fingerprint());
}

}  // namespace
}  // namespace qmap::verify
