// Decorrelated-jitter retry backoff.
//
// The resilience pipeline retries rung attempts that failed with a
// Transient error class (common/error.hpp). Naive fixed or purely
// exponential delays synchronize retry storms: every caller that failed at
// t=0 retries at exactly t=d, collides again, and repeats. The
// decorrelated-jitter schedule (from the AWS architecture blog's
// "Exponential Backoff And Jitter" analysis) draws each delay uniformly
// from [base, prev * 3] capped at `cap`, which spreads retries while still
// growing the expected delay geometrically.
//
// Header-only and driven by the repo's deterministic Rng: for a fixed seed
// the delay sequence is reproducible, so retry telemetry fingerprints are
// byte-identical across runs and thread counts. The class only *computes*
// delays; sleeping (and clamping against the caller's remaining deadline)
// is the caller's job.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/rng.hpp"

namespace qmap::resilience {

struct BackoffOptions {
  /// Lower bound of every draw and the first delay's scale (milliseconds).
  double base_ms = 1.0;
  /// Hard upper bound on any single delay (milliseconds).
  double cap_ms = 250.0;
  /// Growth factor: delay_k is drawn from [base, delay_{k-1} * multiplier].
  double multiplier = 3.0;
};

class Backoff {
 public:
  explicit Backoff(BackoffOptions options = {}, std::uint64_t seed = 0xB0FF)
      : options_(options), rng_(seed), prev_ms_(options.base_ms) {}

  /// The next delay in milliseconds. Deterministic for a fixed seed.
  [[nodiscard]] double next_ms() {
    const double hi = std::max(options_.base_ms, prev_ms_ * options_.multiplier);
    const double drawn = rng_.uniform(options_.base_ms, hi);
    prev_ms_ = std::min(options_.cap_ms, drawn);
    return prev_ms_;
  }

  /// Restarts the schedule (a fresh rung restarts its retry budget but
  /// keeps consuming the same Rng stream, so two rungs never mirror each
  /// other's delays).
  void reset() { prev_ms_ = options_.base_ms; }

  [[nodiscard]] const BackoffOptions& options() const noexcept {
    return options_;
  }

 private:
  BackoffOptions options_;
  Rng rng_;
  double prev_ms_;
};

}  // namespace qmap::resilience
