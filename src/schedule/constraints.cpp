#include "schedule/constraints.hpp"

#include <cmath>

namespace qmap {
namespace {

bool is_single_qubit_unitary(const Gate& gate) {
  return gate.is_unitary() && gate_info(gate.kind).arity == 1;
}

bool same_pulse(const Gate& a, const Gate& b) {
  if (a.kind != b.kind || a.params.size() != b.params.size()) return false;
  for (std::size_t i = 0; i < a.params.size(); ++i) {
    if (std::abs(a.params[i] - b.params[i]) > 1e-12) return false;
  }
  return true;
}

}  // namespace

bool SharedMicrowaveConstraint::compatible(
    const ScheduledGate& candidate, const std::vector<ScheduledGate>& running,
    const Device& device) const {
  if (!is_single_qubit_unitary(candidate.gate)) return true;
  if (device.frequency_groups().empty()) return true;
  const int group = device.frequency_group(candidate.gate.qubits[0]);
  if (group < 0) return true;
  for (const ScheduledGate& other : running) {
    if (!candidate.overlaps(other)) continue;
    if (!is_single_qubit_unitary(other.gate)) continue;
    if (device.frequency_group(other.gate.qubits[0]) != group) continue;
    // Same AWG: the waveform is shared, so concurrent gates must be the
    // identical pulse, perfectly aligned.
    if (!same_pulse(candidate.gate, other.gate) ||
        other.start_cycle != candidate.start_cycle ||
        other.duration_cycles != candidate.duration_cycles) {
      return false;
    }
  }
  return true;
}

bool FeedlineConstraint::compatible(const ScheduledGate& candidate,
                                    const std::vector<ScheduledGate>& running,
                                    const Device& device) const {
  if (candidate.gate.kind != GateKind::Measure) return true;
  if (device.feedlines().empty()) return true;
  const int line = device.feedline(candidate.gate.qubits[0]);
  if (line < 0) return true;
  for (const ScheduledGate& other : running) {
    if (other.gate.kind != GateKind::Measure) continue;
    if (device.feedline(other.gate.qubits[0]) != line) continue;
    if (!candidate.overlaps(other)) continue;
    // Overlapping measurements on a shared feedline must start together.
    if (other.start_cycle != candidate.start_cycle) return false;
  }
  return true;
}

bool ParkingConstraint::compatible(const ScheduledGate& candidate,
                                   const std::vector<ScheduledGate>& running,
                                   const Device& device) const {
  if (device.frequency_groups().empty()) return true;
  const auto parked_by = [&](const ScheduledGate& op) -> std::vector<int> {
    if (op.gate.kind != GateKind::CZ) return {};
    return device.parked_qubits(op.gate.qubits[0], op.gate.qubits[1]);
  };
  // 1. The candidate must not touch a qubit parked by a running CZ.
  for (const ScheduledGate& other : running) {
    if (!candidate.overlaps(other)) continue;
    for (const int parked : parked_by(other)) {
      for (const int q : candidate.gate.qubits) {
        if (q == parked) return false;
      }
    }
  }
  // 2. If the candidate is a CZ, its own parked qubits must be idle for its
  //    whole window.
  const std::vector<int> own_parked = parked_by(candidate);
  if (!own_parked.empty()) {
    for (const ScheduledGate& other : running) {
      if (!candidate.overlaps(other)) continue;
      for (const int q : other.gate.qubits) {
        for (const int parked : own_parked) {
          if (q == parked) return false;
        }
      }
    }
  }
  return true;
}

bool TwoQubitParallelismConstraint::compatible(
    const ScheduledGate& candidate, const std::vector<ScheduledGate>& running,
    const Device& device) const {
  (void)device;
  if (!candidate.gate.is_two_qubit()) return true;
  int concurrent = 0;
  for (const ScheduledGate& other : running) {
    if (!other.gate.is_two_qubit()) continue;
    if (candidate.overlaps(other)) ++concurrent;
  }
  return concurrent < max_concurrent_;
}

std::vector<std::unique_ptr<ResourceConstraint>>
surface_control_constraints() {
  std::vector<std::unique_ptr<ResourceConstraint>> out;
  out.push_back(std::make_unique<SharedMicrowaveConstraint>());
  out.push_back(std::make_unique<FeedlineConstraint>());
  out.push_back(std::make_unique<ParkingConstraint>());
  return out;
}

std::vector<std::unique_ptr<ResourceConstraint>> constraints_for_device(
    const Device& device) {
  std::vector<std::unique_ptr<ResourceConstraint>> out;
  if (!device.frequency_groups().empty() || !device.feedlines().empty()) {
    out = surface_control_constraints();
  }
  if (device.max_parallel_two_qubit() > 0) {
    out.push_back(std::make_unique<TwoQubitParallelismConstraint>(
        device.max_parallel_two_qubit()));
  }
  return out;
}

}  // namespace qmap
