// Bernstein-Vazirani for the hidden string 1011 (4 data qubits + 1
// ancilla): a one-layer oracle of CNOTs fanning into the ancilla —
// a star-shaped interaction graph that placement quality dominates.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[4];
x q[4];
h q[0];
h q[1];
h q[2];
h q[3];
h q[4];
cx q[0], q[4];
cx q[2], q[4];
cx q[3], q[4];
h q[0];
h q[1];
h q[2];
h q[3];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
measure q[3] -> c[3];
