# Empty compiler generated dependencies file for example_surface17_pipeline.
# This may be replaced when dependencies are built.
