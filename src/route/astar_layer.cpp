#include "route/astar_layer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <queue>
#include <unordered_map>

#include "common/error.hpp"
#include "route/route_ir.hpp"

namespace qmap {
namespace {

/// ASAP layering: gate -> layer index such that every gate sits one layer
/// after the latest gate it depends on (barriers force a full cut).
std::vector<std::vector<int>> build_layers(const Circuit& circuit) {
  std::vector<int> qubit_layer(static_cast<std::size_t>(circuit.num_qubits()),
                               -1);
  std::vector<std::vector<int>> layers;
  for (std::size_t i = 0; i < circuit.size(); ++i) {
    const Gate& gate = circuit.gate(i);
    int layer = 0;
    for (const int q : gate.qubits) {
      layer = std::max(layer, qubit_layer[static_cast<std::size_t>(q)] + 1);
    }
    if (gate.kind == GateKind::Barrier) {
      // Anything after the barrier starts on a fresh layer.
      for (int& l : qubit_layer) l = std::max(l, layer);
    }
    for (const int q : gate.qubits) {
      qubit_layer[static_cast<std::size_t>(q)] = layer;
    }
    if (static_cast<std::size_t>(layer) >= layers.size()) {
      layers.resize(static_cast<std::size_t>(layer) + 1);
    }
    layers[static_cast<std::size_t>(layer)].push_back(static_cast<int>(i));
  }
  return layers;
}

/// A program->physical map in the arena; nodes reference, never copy.
struct SearchNode {
  const int* program_to_phys = nullptr;
  int parent = -1;
  int swap_a = -1;
  int swap_b = -1;
  int g = 0;
};

/// Hash-map key over an arena-resident map. Arena blocks never move, so
/// the pointers stay valid for the whole per-layer search. Replaces the
/// old std::map<std::vector<int>, int>: the search only ever does point
/// lookups and overwrites, never ordered iteration, so the container swap
/// cannot change any routing decision.
struct MapKey {
  const int* data = nullptr;
  std::size_t size = 0;
};

struct MapKeyHash {
  std::size_t operator()(const MapKey& key) const noexcept {
    // FNV-1a over the raw entries.
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < key.size; ++i) {
      h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.data[i]));
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

struct MapKeyEq {
  bool operator()(const MapKey& x, const MapKey& y) const noexcept {
    return x.size == y.size &&
           std::memcmp(x.data, y.data, x.size * sizeof(int)) == 0;
  }
};

}  // namespace

RoutingResult AStarLayerRouter::route(const Circuit& circuit,
                                      const Device& device,
                                      const Placement& initial) {
  const auto start_time = std::chrono::steady_clock::now();
  check_routable(circuit, device);
  const CouplingGraph& coupling = device.coupling();
  const std::vector<std::vector<int>> layers = build_layers(circuit);
  RouteArena& arena = RouteArena::scratch();
  const ArenaScope scope(arena);
  // RouteCore supplies the SoA gate records (layer pair extraction), the
  // flat distance matrix, and the program->physical mirror; the CSR DAG is
  // unused here (layers are the schedule).
  RouteCore core(circuit, device, artifacts(), DagMode::Sequential, initial,
                 arena);
  RoutingEmitter emitter(device, initial,
                         circuit.name() + "@" + device.name());
  // Output bound: every program gate plus room for SWAPs and direction
  // fixes; generous slack beats mid-route growth reallocations.
  emitter.reserve(circuit.size() * 3 + 16);
  const int n = circuit.num_qubits();
  const std::size_t nsize = static_cast<std::size_t>(n);

  // Two-qubit gates of one layer as (program, program) pairs, flat.
  std::vector<std::pair<int, int>> pairs;
  std::vector<std::pair<int, int>> lookahead_pairs;
  const auto append_layer_pairs = [&](std::size_t layer_index,
                                      std::vector<std::pair<int, int>>& out) {
    if (layer_index >= layers.size()) return;
    for (const int node : layers[layer_index]) {
      const auto u = static_cast<std::uint32_t>(node);
      if (core.ir.is_two_qubit(u)) {
        out.emplace_back(static_cast<int>(core.ir.q0[u]),
                         static_cast<int>(core.ir.q1[u]));
      }
    }
  };

  const auto pairs_distance_sum =
      [&](const std::vector<std::pair<int, int>>& which,
          const int* program_to_phys) {
        int sum = 0;
        for (const auto& [a, b] : which) {
          sum += core.dist(program_to_phys[a], program_to_phys[b]) - 1;
        }
        return sum;
      };

  std::uint64_t total_expansions = 0;
  std::uint64_t fallback_layers = 0;

  for (std::size_t layer_index = 0; layer_index < layers.size();
       ++layer_index) {
    pairs.clear();
    append_layer_pairs(layer_index, pairs);

    // Current program -> physical map.
    const ArenaScope layer_scope(arena);
    int* current = arena.alloc<int>(nsize);
    for (int k = 0; k < n; ++k) current[k] = core.phys_of(k);

    if (!pairs.empty() && pairs_distance_sum(pairs, current) > 0) {
      // A* over placements to make the whole layer executable.
      lookahead_pairs.clear();
      for (int ahead = 1; ahead <= options_.lookahead_layers; ++ahead) {
        append_layer_pairs(layer_index + static_cast<std::size_t>(ahead),
                           lookahead_pairs);
      }
      const auto heuristic = [&](const int* program_to_phys) {
        const int base = pairs_distance_sum(pairs, program_to_phys);
        double h = std::ceil(static_cast<double>(base) / 2.0);
        if (options_.lookahead_weight > 0.0 && !lookahead_pairs.empty()) {
          h += options_.lookahead_weight *
               pairs_distance_sum(lookahead_pairs, program_to_phys);
        }
        return h;
      };

      std::vector<SearchNode> nodes;
      nodes.push_back(SearchNode{current, -1, -1, -1, 0});
      using QueueEntry = std::pair<double, int>;  // (f, node index)
      std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                          std::greater<>>
          open;
      open.emplace(heuristic(current), 0);
      std::unordered_map<MapKey, int, MapKeyHash, MapKeyEq> best_g;
      best_g[MapKey{current, nsize}] = 0;
      int* staged = arena.alloc<int>(nsize);  // candidate scratch map

      int goal = -1;
      std::size_t expansions = 0;
      while (!open.empty()) {
        check_cancelled();
        const auto [f, index] = open.top();
        open.pop();
        // Copy: pushing into `nodes` below invalidates references.
        const SearchNode node = nodes[static_cast<std::size_t>(index)];
        const auto seen = best_g.find(MapKey{node.program_to_phys, nsize});
        if (seen != best_g.end() && seen->second < node.g) continue;
        if (pairs_distance_sum(pairs, node.program_to_phys) == 0) {
          goal = index;
          break;
        }
        if (++expansions > options_.max_expansions) break;
        ++total_expansions;
        for (const auto& edge : coupling.edges()) {
          std::memcpy(staged, node.program_to_phys, nsize * sizeof(int));
          for (std::size_t k = 0; k < nsize; ++k) {
            if (staged[k] == edge.a) staged[k] = edge.b;
            else if (staged[k] == edge.b) staged[k] = edge.a;
          }
          const int g = node.g + 1;
          const auto it = best_g.find(MapKey{staged, nsize});
          if (it != best_g.end()) {
            if (it->second <= g) continue;
            it->second = g;  // the existing key's contents equal staged
          }
          int* stored = arena.alloc<int>(nsize);
          std::memcpy(stored, staged, nsize * sizeof(int));
          if (it == best_g.end()) best_g.emplace(MapKey{stored, nsize}, g);
          nodes.push_back(SearchNode{stored, index, edge.a, edge.b, g});
          open.emplace(g + heuristic(stored),
                       static_cast<int>(nodes.size() - 1));
        }
      }

      if (goal >= 0) {
        // Reconstruct and emit the SWAP chain.
        std::vector<std::pair<int, int>> swaps;
        for (int index = goal;
             nodes[static_cast<std::size_t>(index)].parent >= 0;
             index = nodes[static_cast<std::size_t>(index)].parent) {
          swaps.emplace_back(nodes[static_cast<std::size_t>(index)].swap_a,
                             nodes[static_cast<std::size_t>(index)].swap_b);
        }
        std::reverse(swaps.begin(), swaps.end());
        for (const auto& [a, b] : swaps) core.emit_swap(emitter, a, b);
      } else {
        ++fallback_layers;
        // Budget exhausted: fall back to shortest-path walking per pair.
        for (const auto& [qa, qb] : pairs) {
          const int pa = core.phys_of(static_cast<std::uint32_t>(qa));
          const int pb = core.phys_of(static_cast<std::uint32_t>(qb));
          const std::vector<int> path = core.shortest_path(pa, pb);
          for (std::size_t i = 0; i + 2 < path.size(); ++i) {
            core.emit_swap(emitter, path[i], path[i + 1]);
          }
        }
      }
    }

    for (const int node : layers[layer_index]) {
      emitter.emit_program_gate(circuit.gate(static_cast<std::size_t>(node)));
    }
  }

  const double runtime_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_time)
          .count();
  RoutingResult result = std::move(emitter).finish(initial, runtime_ms);
  obs::add(observer(), "astar.routes");
  obs::add(observer(), "astar.expansions", total_expansions);
  obs::add(observer(), "astar.fallback_layers", fallback_layers);
  obs::observe(observer(), "route.swaps_inserted",
               static_cast<double>(result.added_swaps));
  return result;
}

}  // namespace qmap
