// Circuit-IR tests: gate model, circuit invariants, dependency DAG with
// scheduling colours (Sec. VI-B), metrics, ASCII rendering.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "ir/ascii.hpp"
#include "ir/circuit.hpp"
#include "ir/dag.hpp"
#include "ir/metrics.hpp"
#include "workloads/workloads.hpp"

namespace qmap {
namespace {

TEST(GateInfo, NamesAndArities) {
  EXPECT_EQ(gate_info(GateKind::CX).name, "cx");
  EXPECT_EQ(gate_info(GateKind::CX).arity, 2);
  EXPECT_FALSE(gate_info(GateKind::CX).symmetric);
  EXPECT_TRUE(gate_info(GateKind::CZ).symmetric);
  EXPECT_TRUE(gate_info(GateKind::SWAP).symmetric);
  EXPECT_EQ(gate_info(GateKind::U).num_params, 3);
  EXPECT_FALSE(gate_info(GateKind::Measure).unitary);
}

TEST(GateInfo, LookupByNameWithAliases) {
  EXPECT_EQ(gate_kind_from_name("cx"), GateKind::CX);
  EXPECT_EQ(gate_kind_from_name("CNOT"), GateKind::CX);
  EXPECT_EQ(gate_kind_from_name("u3"), GateKind::U);
  EXPECT_EQ(gate_kind_from_name("toffoli"), GateKind::CCX);
  EXPECT_THROW((void)gate_kind_from_name("frobnicate"), ParseError);
}

TEST(Gate, EveryUnitaryKindHasUnitaryMatrix) {
  for (int k = 0; k <= static_cast<int>(GateKind::CSWAP); ++k) {
    const auto kind = static_cast<GateKind>(k);
    const GateInfo& info = gate_info(kind);
    std::vector<int> qubits;
    for (int q = 0; q < info.arity; ++q) qubits.push_back(q);
    std::vector<double> params(static_cast<std::size_t>(info.num_params),
                               0.7);
    const Gate gate = make_gate(kind, qubits, params);
    EXPECT_TRUE(gate.matrix().is_unitary(1e-9))
        << "gate " << info.name << " is not unitary";
  }
}

TEST(Gate, MatrixThrowsForNonUnitary) {
  EXPECT_THROW((void)make_measure(0, 0).matrix(), CircuitError);
  EXPECT_THROW((void)make_barrier({0}).matrix(), CircuitError);
}

TEST(Gate, MakeGateValidatesArityParamsAndDuplicates) {
  EXPECT_THROW((void)make_gate(GateKind::CX, {0}), CircuitError);
  EXPECT_THROW((void)make_gate(GateKind::Rz, {0}), CircuitError);  // no param
  EXPECT_THROW((void)make_gate(GateKind::CX, {1, 1}), CircuitError);
  EXPECT_THROW((void)make_gate(GateKind::H, {0}, {1.0}), CircuitError);
}

TEST(Gate, ToStringFormats) {
  EXPECT_EQ(make_gate(GateKind::CX, {2, 4}).to_string(), "cx q2, q4");
  EXPECT_EQ(make_gate(GateKind::Rz, {1}, {0.5}).to_string(), "rz(0.5) q1");
  EXPECT_EQ(make_measure(3, 2).to_string(), "measure q3 -> c2");
}

TEST(Circuit, BuilderChainsAndValidates) {
  Circuit c(3, "demo");
  c.h(0).cx(0, 1).t(2).measure(2, 0);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.num_cbits(), 1);
  EXPECT_THROW(c.h(3), CircuitError);
  EXPECT_THROW(c.cx(0, 3), CircuitError);
  EXPECT_THROW(c.measure(0, -1), CircuitError);
}

TEST(Circuit, AppendMapped) {
  Circuit inner(2);
  inner.cx(0, 1);
  Circuit outer(4);
  outer.append_mapped(inner, {3, 1});
  ASSERT_EQ(outer.size(), 1u);
  EXPECT_EQ(outer.gate(0).qubits, (std::vector<int>{3, 1}));
  EXPECT_THROW(outer.append_mapped(inner, {0}), CircuitError);
}

TEST(Circuit, InverseReversesAndInverts) {
  Circuit c(2);
  c.h(0).t(0).s(1).cx(0, 1).rz(0.3, 1);
  const Circuit inv = c.inverse();
  ASSERT_EQ(inv.size(), c.size());
  EXPECT_EQ(inv.gate(0).kind, GateKind::Rz);
  EXPECT_NEAR(inv.gate(0).params[0], -0.3, 1e-12);
  EXPECT_EQ(inv.gate(2).kind, GateKind::Sdg);
  EXPECT_EQ(inv.gate(4).kind, GateKind::H);
}

TEST(Circuit, InverseRejectsMeasurement) {
  Circuit c(1);
  c.measure(0, 0);
  EXPECT_THROW((void)c.inverse(), CircuitError);
}

TEST(Circuit, TwoQubitSkeletonDropsSingles) {
  const Circuit example = workloads::fig1_example();
  const Circuit skeleton = example.two_qubit_skeleton();
  EXPECT_EQ(skeleton.size(), 5u);  // the five CNOTs of Fig. 1(b)
  for (const Gate& gate : skeleton) EXPECT_TRUE(gate.is_two_qubit());
}

TEST(Circuit, BarrierDefaultsToAllQubits) {
  Circuit c(3);
  c.barrier();
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.gate(0).qubits.size(), 3u);
}

TEST(Dag, EdgesFollowQubitOrder) {
  Circuit c(3);
  c.h(0);          // 0
  c.cx(0, 1);      // 1 depends on 0
  c.h(2);          // 2 independent
  c.cx(1, 2);      // 3 depends on 1 and 2
  const DependencyDag dag(c);
  EXPECT_TRUE(dag.predecessors(0).empty());
  EXPECT_EQ(dag.predecessors(1), (std::vector<int>{0}));
  EXPECT_TRUE(dag.predecessors(2).empty());
  EXPECT_EQ(dag.predecessors(3), (std::vector<int>{1, 2}));
  EXPECT_EQ(dag.successors(0), (std::vector<int>{1}));
}

TEST(Dag, NoDuplicateEdgeForSharedQubits) {
  Circuit c(2);
  c.cx(0, 1).cx(0, 1);
  const DependencyDag dag(c);
  EXPECT_EQ(dag.predecessors(1).size(), 1u);
}

TEST(Dag, ColoursFollowSchedulingProtocol) {
  Circuit c(2);
  c.h(0).cx(0, 1).h(1);
  DependencyDag dag(c);
  EXPECT_EQ(dag.color(0), NodeColor::Ready);
  EXPECT_EQ(dag.color(1), NodeColor::Pending);
  EXPECT_EQ(dag.ready(), (std::vector<int>{0}));
  dag.mark_scheduled(0);
  EXPECT_EQ(dag.color(0), NodeColor::Scheduled);
  EXPECT_EQ(dag.color(1), NodeColor::Ready);
  EXPECT_THROW(dag.mark_scheduled(2), CircuitError);  // still pending
  dag.mark_scheduled(1);
  dag.mark_scheduled(2);
  EXPECT_TRUE(dag.all_scheduled());
  dag.reset();
  EXPECT_EQ(dag.num_scheduled(), 0u);
  EXPECT_EQ(dag.color(0), NodeColor::Ready);
}

TEST(Dag, ReadyTwoQubitIsTheFrontLayer) {
  Circuit c(4);
  c.cx(0, 1).cx(2, 3).cx(1, 2);
  DependencyDag dag(c);
  EXPECT_EQ(dag.ready_two_qubit(), (std::vector<int>{0, 1}));
}

TEST(Dag, DepthMatchesHandComputation) {
  Circuit c(3);
  c.h(0).h(1).cx(0, 1).cx(1, 2).h(2);
  const DependencyDag dag(c);
  EXPECT_EQ(dag.depth(), 4);  // h -> cx -> cx -> h on the critical path
}

TEST(Dag, WeightedCriticalPath) {
  Circuit c(2);
  c.h(0).cx(0, 1);
  const DependencyDag dag(c);
  const double latency = dag.critical_path([&c](int i) {
    return c.gate(static_cast<std::size_t>(i)).is_two_qubit() ? 2.0 : 1.0;
  });
  EXPECT_DOUBLE_EQ(latency, 3.0);
}

TEST(Metrics, CountsAndDepth) {
  const CircuitMetrics m = compute_metrics(workloads::fig1_example());
  EXPECT_EQ(m.total_gates, 10u);
  EXPECT_EQ(m.two_qubit_gates, 5u);
  EXPECT_EQ(m.single_qubit_gates, 5u);
  EXPECT_EQ(m.cx_gates, 5u);
  EXPECT_GT(m.depth, 0);
  EXPECT_LE(m.two_qubit_depth, m.depth);
}

TEST(Metrics, OverheadComputation) {
  Circuit before(2);
  before.cx(0, 1);
  Circuit after(2);
  after.swap(0, 1);
  after.cx(0, 1);
  const MappingOverhead overhead = compute_overhead(before, after);
  EXPECT_EQ(overhead.added_gates, 1u);
  EXPECT_EQ(overhead.added_two_qubit_gates, 1u);
  EXPECT_DOUBLE_EQ(overhead.gate_ratio, 2.0);
}

TEST(Metrics, LatencyWithDurations) {
  Circuit c(2);
  c.h(0).cx(0, 1).measure(1, 0);
  const double latency = circuit_latency(c, [](const Gate& g) {
    if (g.kind == GateKind::Measure) return 30.0;
    return g.is_two_qubit() ? 2.0 : 1.0;
  });
  EXPECT_DOUBLE_EQ(latency, 33.0);
}

TEST(Ascii, DrawsExpectedShape) {
  Circuit c(2);
  c.h(0).cx(0, 1);
  const std::string art = draw_ascii(c);
  EXPECT_NE(art.find("[H]"), std::string::npos);
  EXPECT_NE(art.find('*'), std::string::npos);
  EXPECT_NE(art.find('+'), std::string::npos);
  EXPECT_NE(art.find("q0:"), std::string::npos);
}

TEST(Ascii, PhysicalQubitPrefix) {
  Circuit c(1);
  c.x(0);
  AsciiOptions options;
  options.qubit_prefix = 'Q';
  EXPECT_NE(draw_ascii(c, options).find("Q0:"), std::string::npos);
}

TEST(Ascii, ParallelGatesShareAColumn) {
  Circuit c(2);
  c.h(0).h(1);
  const std::string art = draw_ascii(c);
  // Both H gates in the same column implies two lines with [H] at the same
  // offset.
  const auto first = art.find("[H]");
  const auto second = art.find("[H]", first + 1);
  ASSERT_NE(second, std::string::npos);
  const auto line_start_1 = art.rfind('\n', first);
  const auto line_start_2 = art.rfind('\n', second);
  EXPECT_EQ(first - line_start_1, second - line_start_2);
}

}  // namespace
}  // namespace qmap
