// E11 / Sec. V — classical-control constraint ablation.
//
// "control instruments need to be shared among different qubits. This
// restriction may severely affect the scheduling of quantum operations as
// it will limit the possible parallelism leading to larger circuit
// depths."
//
// For a workload suite on Surface-17, schedules the mapped circuit under
// every subset of the constraint stack (none / +shared-microwave /
// +feedline / +cz-parking / all) and reports the latency attributable to
// each. Expected shape: latency grows monotonically as constraints are
// added; the shared-AWG constraint dominates for gate-heavy circuits and
// the feedline constraint only matters for measurement-heavy ones.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "schedule/constraints.hpp"

namespace {

using namespace qmap;
using namespace qmap::bench;

using ConstraintStack = std::vector<std::unique_ptr<ResourceConstraint>>;

ConstraintStack stack_named(const std::string& name) {
  ConstraintStack stack;
  if (name == "none") return stack;
  if (name == "microwave" || name == "all") {
    stack.push_back(std::make_unique<SharedMicrowaveConstraint>());
  }
  if (name == "feedline" || name == "all") {
    stack.push_back(std::make_unique<FeedlineConstraint>());
  }
  if (name == "parking" || name == "all") {
    stack.push_back(std::make_unique<ParkingConstraint>());
  }
  return stack;
}

void print_figure() {
  const Device s17 = devices::surface17();
  Rng rng(5);
  std::vector<std::pair<std::string, Circuit>> suite;
  suite.emplace_back("fig1", workloads::fig1_example());
  suite.emplace_back("ghz6", workloads::ghz(6));
  suite.emplace_back("qft5", workloads::qft(5));
  {
    Circuit measured = workloads::ghz(6);
    measured.measure_all();
    suite.emplace_back("ghz6+measure", std::move(measured));
  }
  suite.emplace_back("random8", workloads::random_circuit(8, 60, rng, 0.4));

  section("Latency (cycles) by constraint stack, Surface-17");
  TextTable table({"workload", "none", "+microwave", "+feedline", "+parking",
                   "all", "all/none"});
  for (const auto& [label, circuit] : suite) {
    CompilerOptions options;
    options.router = "qmap";
    options.run_scheduler = false;
    const CompilationResult mapped = Compiler(s17, options).compile(circuit);
    std::vector<std::string> row{label};
    int none_cycles = 0;
    int all_cycles = 0;
    for (const char* which :
         {"none", "microwave", "feedline", "parking", "all"}) {
      const ConstraintStack stack = stack_named(which);
      const Schedule schedule =
          schedule_constrained(mapped.final_circuit, s17, stack);
      if (!schedule.is_consistent_with(mapped.final_circuit)) {
        std::cerr << "FATAL: inconsistent schedule (" << which << ")\n";
        std::exit(1);
      }
      const int cycles = schedule.total_cycles();
      if (std::string(which) == "none") none_cycles = cycles;
      if (std::string(which) == "all") all_cycles = cycles;
      row.push_back(TextTable::num(cycles));
    }
    row.push_back(TextTable::num(
        none_cycles > 0 ? static_cast<double>(all_cycles) / none_cycles : 0.0,
        2));
    table.add_row(std::move(row));
  }
  std::cout << table.str();
  paper_note(
      "feedline effects require measurements; parking effects require "
      "frequency-adjacent parallel CZs — circuits without them show no "
      "overhead in those columns, which is itself the expected shape.");
}

void BM_ConstraintStack(benchmark::State& state) {
  static const char* stacks[] = {"none", "microwave", "feedline", "parking",
                                 "all"};
  const char* which = stacks[state.range(0)];
  const Device s17 = devices::surface17();
  Rng rng(5);
  CompilerOptions options;
  options.router = "qmap";
  options.run_scheduler = false;
  const CompilationResult mapped =
      Compiler(s17, options)
          .compile(workloads::random_circuit(8, 60, rng, 0.4));
  const ConstraintStack stack = stack_named(which);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        schedule_constrained(mapped.final_circuit, s17, stack));
  }
  state.SetLabel(which);
}
BENCHMARK(BM_ConstraintStack)->DenseRange(0, 4);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
