// E7 / Sec. V latency claim — "the circuit latency will be 26 cycles
// (20 ns per cycle) that is an ~2x increase compared to the circuit
// latency before mapping, in which the circuit is decomposed into the
// native gates and operations are scheduled only considering the
// dependencies between them."
//
// Regenerates both numbers for the Fig. 1 example on Surface-17: the
// dependency-only baseline and the mapped + control-constrained latency,
// for every router, reporting the ratio. Expected shape: ratio ~2x
// (absolute cycle counts depend on the exact figure circuit, which is
// reconstructed — see DESIGN.md).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "schedule/constraints.hpp"

namespace {

using namespace qmap;
using namespace qmap::bench;

void print_figure() {
  const Device s17 = devices::surface17();
  const Circuit circuit = workloads::fig1_example();

  section("Sec. V: circuit latency on Surface-17 (20 ns cycles)");
  const Circuit baseline = lower_to_device(circuit, s17);
  const int baseline_cycles = schedule_asap(baseline, s17).total_cycles();
  std::printf("before mapping (native gates, dependencies only): %d cycles "
              "= %.0f ns\n",
              baseline_cycles, baseline_cycles * s17.durations().cycle_ns);
  paper_note("after mapping + control constraints: 26 cycles (~2x)");

  TextTable table({"placer", "router", "swaps", "cycles", "ns", "ratio"});
  for (const char* placer : {"exhaustive", "greedy"}) {
    for (const char* router : {"qmap", "sabre", "astar", "naive"}) {
      CompilerOptions options;
      options.placer = placer;
      options.router = router;
      const Compiler compiler(s17, options);
      const CompilationResult result = compiler.compile(circuit);
      if (!Compiler::verify(result)) {
        std::cerr << "FATAL: verification failed\n";
        std::exit(1);
      }
      table.add_row(
          {placer, router, TextTable::num(result.routing.added_swaps),
           TextTable::num(result.scheduled_cycles),
           TextTable::num(result.scheduled_cycles * s17.durations().cycle_ns,
                          0),
           TextTable::num(result.latency_ratio(), 2)});
    }
  }
  // Best case: Qmap's ILP co-optimizes the placement with routing; with the
  // joint-optimal placement only one SWAP remains (Fig. 5) and the latency
  // approaches the paper's 26-cycle figure.
  {
    const Circuit lowered = lower_to_device(circuit, s17, /*keep_swaps=*/true);
    const Placement joint = best_optimal_placement(lowered, s17, "qmap");
    const MappedOutcome outcome = map_and_verify(circuit, s17, "qmap", joint);
    const Schedule schedule = schedule_constrained(
        outcome.final_circuit, s17, surface_control_constraints());
    table.add_row({"joint (ILP)", "qmap",
                   TextTable::num(outcome.routing.added_swaps),
                   TextTable::num(schedule.total_cycles()),
                   TextTable::num(schedule.total_cycles() *
                                      s17.durations().cycle_ns,
                                  0),
                   TextTable::num(static_cast<double>(schedule.total_cycles()) /
                                      baseline_cycles,
                                  2)});
  }
  std::cout << table.str();

  // Where do the extra cycles go? Break the overhead into mapping (SWAP)
  // and control-constraint components.
  section("Latency decomposition (qmap router, exhaustive placement)");
  CompilerOptions options;
  options.placer = "exhaustive";
  options.router = "qmap";
  options.use_control_constraints = false;
  const CompilationResult unconstrained =
      Compiler(s17, options).compile(circuit);
  options.use_control_constraints = true;
  const CompilationResult constrained = Compiler(s17, options).compile(circuit);
  std::printf("  dependency-only baseline:        %d cycles\n",
              constrained.baseline_cycles);
  std::printf("  + routing SWAPs (no constraints): %d cycles\n",
              unconstrained.scheduled_cycles);
  std::printf("  + control constraints:            %d cycles  (ratio %.2fx)\n",
              constrained.scheduled_cycles, constrained.latency_ratio());
}

void BM_ScheduleConstrained(benchmark::State& state) {
  const Device s17 = devices::surface17();
  CompilerOptions options;
  options.run_scheduler = false;
  const CompilationResult routed =
      Compiler(s17, options).compile(workloads::fig1_example());
  const auto constraints = surface_control_constraints();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        schedule_constrained(routed.final_circuit, s17, constraints));
  }
}
BENCHMARK(BM_ScheduleConstrained);

void BM_ScheduleAsap(benchmark::State& state) {
  const Device s17 = devices::surface17();
  CompilerOptions options;
  options.run_scheduler = false;
  const CompilationResult routed =
      Compiler(s17, options).compile(workloads::fig1_example());
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_asap(routed.final_circuit, s17));
  }
}
BENCHMARK(BM_ScheduleAsap);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
