#include "pass/spec.hpp"

#include "common/error.hpp"
#include "pass/registry.hpp"

namespace qmap {

Json PassSpec::to_json() const {
  Json out;
  out["pass"] = Json(pass);
  if (!options.is_null()) out["options"] = options;
  return out;
}

void PipelineSpec::append(const std::string& pass, Json options) {
  PassSpec spec;
  spec.pass = canonical_pass_name(pass);
  spec.options = std::move(options);
  // Construct once to validate the option keys/values eagerly.
  (void)make_pass(spec.pass, spec.options);
  passes_.push_back(std::move(spec));
}

PipelineSpec PipelineSpec::standard(const std::string& placer,
                                    const std::string& router,
                                    bool lower_to_native, bool peephole,
                                    bool run_scheduler,
                                    bool use_control_constraints) {
  PipelineSpec spec;
  Json decompose_options;
  decompose_options["lower_to_native"] = Json(lower_to_native);
  spec.append("decompose", std::move(decompose_options));
  Json placer_options;
  placer_options["algorithm"] = Json(placer);
  spec.append("placer", std::move(placer_options));
  Json router_options;
  router_options["algorithm"] = Json(router);
  spec.append("router", std::move(router_options));
  Json postroute_options;
  postroute_options["peephole"] = Json(peephole);
  postroute_options["lower_to_native"] = Json(lower_to_native);
  spec.append("postroute", std::move(postroute_options));
  if (run_scheduler) {
    Json schedule_options;
    schedule_options["use_control_constraints"] =
        Json(use_control_constraints);
    spec.append("schedule", std::move(schedule_options));
  }
  return spec;
}

PipelineSpec PipelineSpec::from_json(const Json& json) {
  const Json* passes = nullptr;
  if (json.is_array()) {
    passes = &json;
  } else if (json.is_object()) {
    passes = json.find("passes");
    if (passes == nullptr) {
      throw MappingError(
          "pipeline spec: expected a \"passes\" array (or a bare array of "
          "passes)");
    }
  } else {
    throw MappingError(
        "pipeline spec: expected a JSON object with a \"passes\" array");
  }
  if (!passes->is_array()) {
    throw MappingError("pipeline spec: \"passes\" must be an array");
  }
  PipelineSpec spec;
  for (const Json& entry : passes->as_array()) {
    if (entry.is_string()) {
      spec.append(entry.as_string());
      continue;
    }
    if (!entry.is_object()) {
      throw MappingError(
          "pipeline spec: each pass must be a name string or an object "
          "{\"pass\": name, \"options\": {...}}");
    }
    const Json* name = entry.find("pass");
    if (name == nullptr || !name->is_string()) {
      throw MappingError(
          "pipeline spec: pass entry is missing its \"pass\" name");
    }
    const Json* options = entry.find("options");
    spec.append(name->as_string(), options ? *options : Json());
  }
  return spec;
}

PipelineSpec PipelineSpec::from_json_text(std::string_view text) {
  return from_json(Json::parse(text));
}

PipelineSpec PipelineSpec::canonical() const {
  PipelineSpec out;
  for (const PassSpec& spec : passes_) {
    // Start from the full default object and overlay the explicit options;
    // JsonObject is a std::map, so the merged object is sorted by
    // construction.
    Json options = default_pass_options(spec.pass);
    if (!spec.options.is_null()) {
      for (const auto& [key, value] : spec.options.as_object()) {
        options[key] = value;
      }
    }
    out.append(spec.pass, std::move(options));
  }
  return out;
}

Json PipelineSpec::canonical_json() const { return canonical().to_json(); }

Json PipelineSpec::to_json() const {
  JsonArray array;
  array.reserve(passes_.size());
  for (const PassSpec& spec : passes_) array.push_back(spec.to_json());
  Json out;
  out["passes"] = Json(std::move(array));
  return out;
}

std::string PipelineSpec::algorithm_of(const std::string& pass) const {
  for (const PassSpec& spec : passes_) {
    if (spec.pass != pass) continue;
    if (!spec.options.is_null()) {
      if (const Json* algorithm = spec.options.find("algorithm")) {
        return algorithm->as_string();
      }
    }
    // Defaults mirror make_pass().
    return pass == "placer" ? "greedy" : "sabre";
  }
  return "";
}

std::string PipelineSpec::placer_name() const { return algorithm_of("placer"); }

std::string PipelineSpec::router_name() const { return algorithm_of("router"); }

std::string PipelineSpec::label() const {
  const std::string placer = placer_name();
  const std::string router = router_name();
  if (!placer.empty() && !router.empty()) return placer + "+" + router;
  std::string out;
  for (const PassSpec& spec : passes_) {
    if (!out.empty()) out += '+';
    out += spec.pass;
  }
  return out;
}

std::vector<std::unique_ptr<Pass>> PipelineSpec::build() const {
  std::vector<std::unique_ptr<Pass>> passes;
  passes.reserve(passes_.size());
  for (const PassSpec& spec : passes_) {
    passes.push_back(make_pass(spec.pass, spec.options));
  }
  return passes;
}

}  // namespace qmap
