file(REMOVE_RECURSE
  "libqmap_ir.a"
)
