// Scheduler tests: ASAP/ALAP correctness, the Sec. V control-constraint
// implementations, and the constrained scheduler's guarantees.
#include <gtest/gtest.h>

#include "arch/builtin.hpp"
#include "decompose/decomposer.hpp"
#include "schedule/constraints.hpp"
#include "schedule/schedulers.hpp"
#include "workloads/workloads.hpp"

namespace qmap {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Validates a schedule against a constraint stack: every pair of
/// overlapping operations must be mutually compatible.
bool satisfies_constraints(
    const Schedule& schedule, const Device& device,
    const std::vector<std::unique_ptr<ResourceConstraint>>& constraints) {
  const auto& ops = schedule.operations();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    std::vector<ScheduledGate> others;
    for (std::size_t j = 0; j < ops.size(); ++j) {
      if (j != i) others.push_back(ops[j]);
    }
    for (const auto& constraint : constraints) {
      if (!constraint->compatible(ops[i], others, device)) return false;
    }
  }
  return true;
}

TEST(Asap, ParallelIndependentGates) {
  const Device s17 = devices::surface17();
  Circuit c(17);
  c.x(1).x(7).cz(2, 5);
  const Schedule schedule = schedule_asap(c, s17);
  for (const ScheduledGate& op : schedule.operations()) {
    EXPECT_EQ(op.start_cycle, 0);
  }
  EXPECT_EQ(schedule.total_cycles(), 2);  // the CZ takes 2 cycles
}

TEST(Asap, SerializesDependentGates) {
  const Device s17 = devices::surface17();
  Circuit c(17);
  c.x(1).cz(1, 5).y(5);
  const Schedule schedule = schedule_asap(c, s17);
  EXPECT_EQ(schedule.operations()[0].start_cycle, 0);
  EXPECT_EQ(schedule.operations()[1].start_cycle, 1);
  EXPECT_EQ(schedule.operations()[2].start_cycle, 3);
  EXPECT_EQ(schedule.total_cycles(), 4);
  EXPECT_TRUE(schedule.is_consistent_with(c));
}

TEST(Asap, MeasurementDuration) {
  const Device s17 = devices::surface17();
  Circuit c(17);
  c.x(0).measure(0, 0);
  const Schedule schedule = schedule_asap(c, s17);
  EXPECT_EQ(schedule.total_cycles(), 1 + 30);
}

TEST(Alap, SameLatencyAsAsapLaterStarts) {
  const Device s17 = devices::surface17();
  Circuit c(17);
  c.x(1).x(1).cz(2, 5);  // the CZ could start late without hurting latency
  const Schedule asap = schedule_asap(c, s17);
  const Schedule alap = schedule_alap(c, s17);
  EXPECT_EQ(asap.total_cycles(), alap.total_cycles());
  EXPECT_TRUE(alap.is_consistent_with(c));
  // The independent CZ is pushed to the end in ALAP.
  EXPECT_EQ(alap.operations()[2].gate.kind, GateKind::CZ);
  EXPECT_EQ(alap.operations()[2].end_cycle(), alap.total_cycles());
}

TEST(SharedMicrowave, SameGateMayRunInParallel) {
  const Device s17 = devices::surface17();
  SharedMicrowaveConstraint constraint;
  // Qubits 1 and 3 are both f1 data qubits.
  ASSERT_EQ(s17.frequency_group(1), s17.frequency_group(3));
  const ScheduledGate x1{make_gate(GateKind::X, {1}), 0, 1};
  const ScheduledGate x3{make_gate(GateKind::X, {3}), 0, 1};
  EXPECT_TRUE(constraint.compatible(x3, {x1}, s17));
}

TEST(SharedMicrowave, DifferentGatesSameGroupConflict) {
  const Device s17 = devices::surface17();
  SharedMicrowaveConstraint constraint;
  const ScheduledGate x1{make_gate(GateKind::X, {1}), 0, 1};
  const ScheduledGate y3{make_gate(GateKind::Y, {3}), 0, 1};
  EXPECT_FALSE(constraint.compatible(y3, {x1}, s17));
  // Different rotation angles are different pulses too.
  const ScheduledGate rx_a{make_gate(GateKind::Rx, {1}, {0.5}), 0, 1};
  const ScheduledGate rx_b{make_gate(GateKind::Rx, {3}, {0.7}), 0, 1};
  EXPECT_FALSE(constraint.compatible(rx_b, {rx_a}, s17));
  // Identical angle is the same waveform.
  const ScheduledGate rx_c{make_gate(GateKind::Rx, {3}, {0.5}), 0, 1};
  EXPECT_TRUE(constraint.compatible(rx_c, {rx_a}, s17));
}

TEST(SharedMicrowave, DifferentGroupsDoNotInteract) {
  const Device s17 = devices::surface17();
  SharedMicrowaveConstraint constraint;
  // Qubit 1 is f1 (group 0), qubit 2 is f3 (group 2).
  ASSERT_NE(s17.frequency_group(1), s17.frequency_group(2));
  const ScheduledGate x1{make_gate(GateKind::X, {1}), 0, 1};
  const ScheduledGate y2{make_gate(GateKind::Y, {2}), 0, 1};
  EXPECT_TRUE(constraint.compatible(y2, {x1}, s17));
}

TEST(SharedMicrowave, NonOverlappingGatesAreFree) {
  const Device s17 = devices::surface17();
  SharedMicrowaveConstraint constraint;
  const ScheduledGate x1{make_gate(GateKind::X, {1}), 0, 1};
  const ScheduledGate y3{make_gate(GateKind::Y, {3}), 1, 1};
  EXPECT_TRUE(constraint.compatible(y3, {x1}, s17));
}

TEST(Feedline, MeasurementsMustStartTogetherOrNotOverlap) {
  const Device s17 = devices::surface17();
  FeedlineConstraint constraint;
  // Qubits 0 and 2 share feedline 0 ("not possible to start measuring
  // qubit 2 while still measuring qubit 0").
  const ScheduledGate m0{make_measure(0, 0), 0, 30};
  const ScheduledGate m2_late{make_measure(2, 2), 5, 30};
  EXPECT_FALSE(constraint.compatible(m2_late, {m0}, s17));
  const ScheduledGate m2_same{make_measure(2, 2), 0, 30};
  EXPECT_TRUE(constraint.compatible(m2_same, {m0}, s17));
  const ScheduledGate m2_after{make_measure(2, 2), 30, 30};
  EXPECT_TRUE(constraint.compatible(m2_after, {m0}, s17));
  // Different feedlines do not interact.
  const ScheduledGate m1{make_measure(1, 1), 5, 30};
  EXPECT_TRUE(constraint.compatible(m1, {m0}, s17));
}

TEST(Parking, BlocksGatesOnParkedQubits) {
  const Device s17 = devices::surface17();
  ParkingConstraint constraint;
  // Find a CZ whose parked set is non-empty.
  for (const auto& edge : s17.coupling().edges()) {
    const std::vector<int> parked = s17.parked_qubits(edge.a, edge.b);
    if (parked.empty()) continue;
    const ScheduledGate cz{make_gate(GateKind::CZ, {edge.a, edge.b}), 0, 2};
    const ScheduledGate victim{make_gate(GateKind::X, {parked.front()}), 1, 1};
    EXPECT_FALSE(constraint.compatible(victim, {cz}, s17));
    EXPECT_FALSE(constraint.compatible(cz, {victim}, s17));  // symmetric
    const ScheduledGate after{make_gate(GateKind::X, {parked.front()}), 2, 1};
    EXPECT_TRUE(constraint.compatible(after, {cz}, s17));
    return;
  }
  FAIL() << "no CZ with a non-empty parked set found";
}

TEST(Constrained, ScheduleSatisfiesAllConstraints) {
  const Device s17 = devices::surface17();
  // Force conflicts: same-group single-qubit gates of different kinds.
  Circuit c(17);
  c.x(1).y(3).x(8).y(13).cz(1, 5).cz(2, 6).x(15).measure(0, 0).measure(2, 2);
  const auto constraints = surface_control_constraints();
  const Schedule schedule = schedule_constrained(c, s17, constraints);
  EXPECT_TRUE(schedule.is_consistent_with(c));
  EXPECT_TRUE(satisfies_constraints(schedule, s17, constraints));
}

TEST(Constrained, ConstraintsOnlyIncreaseLatency) {
  const Device s17 = devices::surface17();
  Rng rng(5);
  Circuit c = lower_to_device(workloads::random_circuit(4, 30, rng), s17);
  // Remap onto spread-out physical qubits so CZs exist? Keep q0..q3 which
  // are not pairwise adjacent; use a simple hand-built conflict circuit
  // instead to stay coupling-agnostic: only single-qubit gates.
  Circuit conflicts(17);
  conflicts.x(1).y(3).x(13).y(15).rx(0.5, 8).ry(0.5, 1);
  const Schedule unconstrained = schedule_asap(conflicts, s17);
  const Schedule constrained =
      schedule_constrained(conflicts, s17, surface_control_constraints());
  EXPECT_GE(constrained.total_cycles(), unconstrained.total_cycles());
  EXPECT_GT(constrained.total_cycles(), 1);  // conflicts force serialization
}

TEST(Constrained, EmptyConstraintStackMatchesAsapLatency) {
  const Device s17 = devices::surface17();
  Rng rng(8);
  Circuit c(17);
  c.x(1).y(2).cz(1, 5).x(1).cz(2, 6).measure(1, 1);
  const std::vector<std::unique_ptr<ResourceConstraint>> empty;
  EXPECT_EQ(schedule_constrained(c, s17, empty).total_cycles(),
            schedule_asap(c, s17).total_cycles());
}

TEST(Constrained, ParallelSameGateStillParallel) {
  const Device s17 = devices::surface17();
  Circuit c(17);
  c.x(1).x(3).x(8).x(13).x(15);  // all f1-group: same pulse, one AWG
  const Schedule schedule =
      schedule_constrained(c, s17, surface_control_constraints());
  EXPECT_EQ(schedule.total_cycles(), 1);
}

TEST(Constrained, DifferentGatesSameGroupSerialize) {
  const Device s17 = devices::surface17();
  Circuit c(17);
  c.x(1).y(3);  // same group, different pulses
  const Schedule schedule =
      schedule_constrained(c, s17, surface_control_constraints());
  EXPECT_EQ(schedule.total_cycles(), 2);
}

TEST(ScheduleForDevice, PicksConstraintsAutomatically) {
  Circuit c(5);
  c.h(0).cx(1, 0);
  const Device qx4 = devices::ibm_qx4();  // no control constraints
  EXPECT_EQ(schedule_for_device(c, qx4).total_cycles(),
            schedule_asap(c, qx4).total_cycles());
  const Device s17 = devices::surface17();
  Circuit conflict(17);
  conflict.x(1).y(3);
  EXPECT_EQ(schedule_for_device(conflict, s17).total_cycles(), 2);
}

TEST(ScheduleTable, RendersCycleRows) {
  const Device s17 = devices::surface17();
  Circuit c(17);
  c.x(1).cz(1, 5);
  const Schedule schedule = schedule_asap(c, s17);
  const std::string table = schedule.to_table();
  EXPECT_NE(table.find("cycle"), std::string::npos);
  EXPECT_NE(table.find("cz"), std::string::npos);
}

TEST(ScheduleToCircuit, OrdersByStartCycle) {
  Schedule schedule(2);
  schedule.add(ScheduledGate{make_gate(GateKind::H, {1}), 5, 1});
  schedule.add(ScheduledGate{make_gate(GateKind::X, {0}), 0, 1});
  const Circuit c = schedule.to_circuit();
  EXPECT_EQ(c.gate(0).kind, GateKind::X);
  EXPECT_EQ(c.gate(1).kind, GateKind::H);
}

TEST(ScheduleConsistency, DetectsOverlapOnSharedQubit) {
  Schedule bad(2);
  bad.add(ScheduledGate{make_gate(GateKind::X, {0}), 0, 2});
  bad.add(ScheduledGate{make_gate(GateKind::Y, {0}), 1, 1});
  Circuit source(2);
  source.x(0).y(0);
  EXPECT_FALSE(bad.is_consistent_with(source));
}

}  // namespace
}  // namespace qmap
