// qmap_serve: the compile-as-a-service daemon.
//
// Speaks JSON-lines (one request object per line, one response object per
// line; correlate by "id") over stdin/stdout by default, or over a Unix
// domain socket with --socket PATH — each accepted connection gets its own
// serve() loop, so several local clients can multiplex one daemon, one
// result cache, and one compile pool.
//
//   echo '{"op":"ping"}' | qmap_serve
//   qmap_serve --socket /tmp/qmap.sock &
//   printf '%s\n' '{"op":"compile","device":"ibm_qx4","qasm":"..."}' |
//     nc -U /tmp/qmap.sock
//
// Lifecycle: SIGTERM/SIGINT trigger a graceful drain — the daemon stops
// admitting (further submits answer status:"shed"), waits up to
// --drain-ms for in-flight compiles, cancels stragglers, flushes every
// response, and exits 0. SIGPIPE is ignored so a client hanging up
// mid-response surfaces as a short write, never as daemon death.
//
// See README "Running the compile service" and DESIGN.md §10.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/service.hpp"

#ifndef _WIN32
#include <csignal>
#include <pthread.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define QMAP_SERVE_HAVE_UNIX_SOCKETS 1
#endif

namespace {

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --socket PATH        listen on a Unix domain socket instead of\n"
      << "                       stdin/stdout (one serve loop per client)\n"
      << "  --workers N          dispatcher threads (default 2)\n"
      << "  --compile-threads N  engine pool threads (default: hardware)\n"
      << "  --cache-mb N         result-cache byte budget in MiB (default 64)\n"
      << "  --cache-shards N     result-cache lock shards (default 8)\n"
      << "  --negative-ttl-ms X  failed-outcome cache TTL (default 2000)\n"
      << "  --deadline-ms X      default per-request deadline (default none)\n"
      << "  --drain-ms X         graceful-drain deadline on SIGTERM/SIGINT\n"
      << "                       (default 2000; stragglers are cancelled)\n"
      << "  --max-queued N       global queue budget; beyond it requests are\n"
      << "                       shed (default 256, 0 = unlimited)\n"
      << "  --metrics            dump the obs metrics JSON to stderr on exit\n"
      << "  --help               this text\n";
}

#ifdef QMAP_SERVE_HAVE_UNIX_SOCKETS
// One accept loop; each connection is served on its own thread against the
// shared service (shared cache, shared compile pool, shared fairness
// queues — the whole point of the daemon).
int serve_unix_socket(qmap::service::CompileService& service,
                      const std::string& path) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("qmap_serve: socket");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::cerr << "qmap_serve: socket path too long: " << path << "\n";
    ::close(listener);
    return 1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    std::perror("qmap_serve: bind");
    ::close(listener);
    return 1;
  }
  if (::listen(listener, 16) != 0) {
    std::perror("qmap_serve: listen");
    ::close(listener);
    return 1;
  }
  std::cerr << "qmap_serve: listening on " << path << "\n";

  std::vector<std::thread> sessions;
  for (;;) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) break;
    sessions.emplace_back([&service, fd] {
      // Drain the connection into memory, serve it, write the responses
      // back. JSON-lines has no framing beyond '\n', so EOF is the only
      // request-stream terminator a socket client can send (shutdown(WR)).
      std::string input;
      char buffer[4096];
      for (;;) {
        const ssize_t n = ::read(fd, buffer, sizeof(buffer));
        if (n <= 0) break;
        input.append(buffer, static_cast<std::size_t>(n));
      }
      std::istringstream in(input);
      std::ostringstream out;
      service.serve(in, out);
      const std::string reply = out.str();
      std::size_t written = 0;
      while (written < reply.size()) {
        // SIGPIPE is ignored process-wide (main), so a client that hung
        // up surfaces here as n <= 0 (EPIPE) and we just stop writing.
        const ssize_t n =
            ::write(fd, reply.data() + written, reply.size() - written);
        if (n <= 0) break;
        written += static_cast<std::size_t>(n);
      }
      ::close(fd);
    });
  }
  for (auto& session : sessions) session.join();
  ::close(listener);
  return 0;
}
#endif

}  // namespace

int main(int argc, char** argv) {
  qmap::service::ServiceConfig config;
  std::string socket_path;
  bool dump_metrics = false;
  double drain_ms = 2000.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "qmap_serve: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = next();
    } else if (arg == "--workers") {
      config.num_workers = std::atoi(next().c_str());
    } else if (arg == "--compile-threads") {
      config.num_compile_threads = std::atoi(next().c_str());
    } else if (arg == "--cache-mb") {
      config.cache.max_bytes =
          static_cast<std::size_t>(std::atoll(next().c_str())) << 20;
    } else if (arg == "--cache-shards") {
      config.cache.shards = std::atoi(next().c_str());
    } else if (arg == "--negative-ttl-ms") {
      config.cache.negative_ttl_ms = std::atof(next().c_str());
    } else if (arg == "--deadline-ms") {
      config.default_deadline_ms = std::atof(next().c_str());
    } else if (arg == "--drain-ms") {
      drain_ms = std::atof(next().c_str());
    } else if (arg == "--max-queued") {
      config.overload.max_queued_total =
          static_cast<std::size_t>(std::atoll(next().c_str()));
    } else if (arg == "--metrics") {
      dump_metrics = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::cerr << "qmap_serve: unknown option " << arg << "\n";
      usage(argv[0]);
      return 2;
    }
  }

#ifndef _WIN32
  // SIGPIPE immunity: a client hanging up mid-response must surface as a
  // short write in the write loops, never kill the daemon. (The stdio
  // path is covered too: an EPIPE'd std::cout just sets failbit.)
  std::signal(SIGPIPE, SIG_IGN);

  // Block the drain signals before any thread exists, so every thread —
  // dispatchers, compile pool, socket sessions — inherits the mask and
  // the dedicated sigwait thread below is their only receiver.
  sigset_t drain_signals;
  sigemptyset(&drain_signals);
  sigaddset(&drain_signals, SIGTERM);
  sigaddset(&drain_signals, SIGINT);
  pthread_sigmask(SIG_BLOCK, &drain_signals, nullptr);
#endif

  qmap::obs::Observer observer;
  config.obs = &observer;
  qmap::service::CompileService service(std::move(config));

#ifndef _WIN32
  // Graceful drain: first SIGTERM/SIGINT stops admission, finishes (or
  // past the deadline, cancels) in-flight work, flushes responses, and
  // exits 0. Detached: on a normal EOF exit the thread is still parked in
  // sigwait and dies with the process.
  std::thread([&service, &observer, drain_signals, drain_ms,
               dump_metrics] {
    int signal_number = 0;
    sigset_t signals = drain_signals;
    if (sigwait(&signals, &signal_number) != 0) return;
    std::cerr << "qmap_serve: caught "
              << (signal_number == SIGTERM ? "SIGTERM" : "SIGINT")
              << ", draining (deadline " << drain_ms << "ms)\n";
    const qmap::service::DrainReport report = service.drain(drain_ms);
    std::cerr << "qmap_serve: drained in " << report.wall_ms << "ms"
              << (report.clean ? "" : " (stragglers cancelled)") << "\n";
    if (dump_metrics) {
      std::cerr << observer.metrics().to_json().dump(2) << "\n";
    }
    std::cout.flush();
    std::exit(0);
  }).detach();
#endif

  int rc = 0;
  if (!socket_path.empty()) {
#ifdef QMAP_SERVE_HAVE_UNIX_SOCKETS
    rc = serve_unix_socket(service, socket_path);
#else
    std::cerr << "qmap_serve: --socket unsupported on this platform\n";
    rc = 2;
#endif
  } else {
    service.serve(std::cin, std::cout);
  }

  if (dump_metrics) {
    std::cerr << observer.metrics().to_json().dump(2) << "\n";
  }
  return rc;
}
